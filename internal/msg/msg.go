// Package msg defines the protocol messages exchanged by ARMCI user
// processes and data servers, and the matching queues the fabrics deliver
// them into.
package msg

import (
	"fmt"
	"time"

	"armci/internal/shmem"
)

// Addr names an endpoint of the emulated cluster: either the user process
// of a rank or the data server of a node. ARMCI runs one server thread per
// SMP node; it handles remote-memory requests for every process of the
// node.
type Addr struct {
	Server bool
	ID     int // rank for user endpoints, node index for servers
}

// User returns the endpoint address of rank's user process.
func User(rank int) Addr { return Addr{ID: rank} }

// ServerOf returns the endpoint address of node's data server.
func ServerOf(node int) Addr { return Addr{Server: true, ID: node} }

// NICOf returns the endpoint address of node's NIC agent — the paper's
// §5 future-work offload target. Agents share the server lifecycle and
// occupy server IDs at numNodes+node.
func NICOf(node, numNodes int) Addr { return Addr{Server: true, ID: numNodes + node} }

func (a Addr) String() string {
	if a.Server {
		return fmt.Sprintf("srv%d", a.ID)
	}
	return fmt.Sprintf("p%d", a.ID)
}

// IsNIC reports whether a is a NIC agent address, given the node count.
func (a Addr) IsNIC(numNodes int) bool { return a.Server && a.ID >= numNodes }

// Kind is the protocol message type.
type Kind uint8

const (
	// KindPut is a non-blocking put request carried to a data server.
	KindPut Kind = iota + 1
	// KindPutAck acknowledges one put (FenceModeAck fabrics only).
	KindPutAck
	// KindGet requests a (possibly strided) read; answered by KindGetResp.
	KindGet
	// KindGetResp carries the data of a get.
	KindGetResp
	// KindAcc is an atomic accumulate request (dst += scale*src).
	KindAcc
	// KindRmw is an atomic read-modify-write request; answered by
	// KindRmwResp.
	KindRmw
	// KindRmwResp carries the previous value(s) of an RMW.
	KindRmwResp
	// KindFenceReq asks a server to confirm completion of all puts the
	// origin has issued to it; answered by KindFenceAck.
	KindFenceReq
	// KindFenceAck confirms a fence request.
	KindFenceAck
	// KindLockReq asks a server to acquire a server-managed lock on
	// behalf of the origin; answered by KindLockGrant, possibly after
	// queueing.
	KindLockReq
	// KindLockGrant notifies a process that it holds a server-managed
	// lock.
	KindLockGrant
	// KindUnlock asks a server to release a server-managed lock. It is
	// not acknowledged ("the process simply has to initiate sending a
	// message to the server and need not wait for a reply").
	KindUnlock
	// KindPutV is a vector put: one message carrying writes to many
	// disjoint locations of one node (ARMCI_PutV).
	KindPutV
	// KindGetV is a vector get (ARMCI_GetV); answered by KindGetResp
	// with the concatenated segments.
	KindGetV
	// KindColl is a collective-phase message of the message-passing
	// layer (barrier and all-reduce exchanges); matched by Tag and Src.
	KindColl
	// KindSend is a user-level point-to-point payload of the
	// message-passing layer; matched by Tag and Src.
	KindSend
	// KindBatch is a coalesced frame of small puts, accumulates and word
	// stores bound for one node's data server. Data holds the batch body
	// encoded by internal/wire's batch codec; N is the entry count. The
	// server unpacks the entries in order and in one service block, so a
	// batch is atomic with respect to loss, retransmission and duplicate
	// suppression — exactly-once applies to the whole frame.
	KindBatch
)

var kindNames = map[Kind]string{
	KindPut: "put", KindPutAck: "put-ack", KindGet: "get", KindGetResp: "get-resp",
	KindAcc: "acc", KindRmw: "rmw", KindRmwResp: "rmw-resp",
	KindFenceReq: "fence-req", KindFenceAck: "fence-ack",
	KindLockReq: "lock-req", KindLockGrant: "lock-grant", KindUnlock: "unlock",
	KindPutV: "putv", KindGetV: "getv",
	KindColl: "coll", KindSend: "send", KindBatch: "batch",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// RmwOp selects the atomic operation of a KindRmw request.
type RmwOp uint8

const (
	// RmwFetchAdd adds Operands[0] and returns the old value.
	RmwFetchAdd RmwOp = iota + 1
	// RmwSwap stores Operands[0] and returns the old value.
	RmwSwap
	// RmwCAS stores Operands[1] if the cell holds Operands[0]; returns
	// the observed value.
	RmwCAS
	// RmwSwapPair stores Operands[0:2] in a pair of cells and returns
	// the old pair — one of the operations the paper adds to ARMCI.
	RmwSwapPair
	// RmwCASPair stores Operands[2:4] if the pair holds Operands[0:2];
	// returns the observed pair — the compare&swap the paper adds.
	RmwCASPair
	// RmwLoadPair atomically reads a pair of cells.
	RmwLoadPair
	// RmwStore stores Operands[0] fire-and-forget: the server sends no
	// response, and the store is counted as a put for fence purposes.
	// It is the one-message lock hand-off path of the queuing lock.
	RmwStore
	// RmwStorePair stores Operands[0:2] fire-and-forget, like RmwStore.
	RmwStorePair
)

var rmwNames = map[RmwOp]string{
	RmwFetchAdd: "fetch-add", RmwSwap: "swap", RmwCAS: "cas",
	RmwSwapPair: "swap-pair", RmwCASPair: "cas-pair", RmwLoadPair: "load-pair",
	RmwStore: "store", RmwStorePair: "store-pair",
}

func (o RmwOp) String() string {
	if s, ok := rmwNames[o]; ok {
		return s
	}
	return fmt.Sprintf("RmwOp(%d)", uint8(o))
}

// Message is one protocol message. A single struct covers every kind; the
// populated fields depend on Kind.
type Message struct {
	Kind Kind
	Src  Addr
	Dst  Addr

	// Origin is the rank on whose behalf a server request is made (for
	// requests relayed through servers it can differ from Src.ID).
	Origin int

	// Token correlates a response with its request.
	Token uint64

	// Tag carries the collective phase / user tag of mp-layer messages,
	// or the lock index of lock requests.
	Tag int

	// Ptr is the target memory location of data and RMW requests.
	Ptr shmem.Ptr

	// Stride describes non-contiguous put/get/acc layouts. Zero value
	// means contiguous (length given by Data or N).
	Stride shmem.Strided

	// N is the byte count of a get request.
	N int

	// Vec lists the segments of a vector put/get. For KindPutV, Data
	// holds the segments' payloads concatenated in order; for KindGetV
	// the response data is concatenated the same way.
	Vec []VecSeg

	// Op is the RMW sub-operation (KindRmw) or accumulate element type
	// (KindAcc, as shmem.AccOp).
	Op uint8

	// Scale is the accumulate scale factor.
	Scale float64

	// Operands carries RMW operands and results.
	Operands [4]int64

	// Data is the payload of puts, accumulates, get responses and
	// mp-layer messages.
	Data []byte

	// Seq is the per-(Src,Dst) sequence number the transport pipeline
	// stamps on every send, starting at 1. The receive side uses it to
	// suppress injected duplicate deliveries and to correlate arrivals
	// with trace events.
	Seq uint64

	// Epoch is the membership view epoch the transport pipeline stamps
	// on every send under elastic operation. The receive side rejects
	// messages from earlier epochs, fencing out in-flight traffic from
	// deposed incarnations after a rank is respawned. Zero on fabrics
	// that never change membership.
	Epoch uint64

	// Sent is stamped by the fabric: the (virtual or wall) time at
	// which the send was initiated (after the modeled send overhead).
	Sent time.Duration

	// Arrival is stamped by the fabric: the (virtual or wall) time at
	// which the message is available at the destination.
	Arrival time.Duration

	// Dup marks an injected duplicate copy (fault injection only);
	// duplicates are suppressed before delivery and never reach
	// protocol code. Not transmitted on the wire.
	Dup bool

	// FaultDelay is the extra latency the fault-injection stage added
	// to this message (diagnostic; not transmitted on the wire).
	FaultDelay time.Duration
}

// PayloadBytes returns the modeled wire payload size of the message, used
// by the cost model. Control fields are charged as a small fixed header.
func (m *Message) PayloadBytes() int {
	const header = 32
	return header + len(m.Data)
}

func (m *Message) String() string {
	return fmt.Sprintf("%s %s->%s tok=%d tag=%d ptr=%v n=%d data=%d",
		m.Kind, m.Src, m.Dst, m.Token, m.Tag, m.Ptr, m.N, len(m.Data))
}

// VecSeg is one segment of a vector operation: a location and a length.
type VecSeg struct {
	Ptr shmem.Ptr
	N   int
}

// Match is a predicate selecting messages from a mailbox.
type Match func(*Message) bool

// MatchKind selects messages of one kind.
func MatchKind(k Kind) Match {
	return func(m *Message) bool { return m.Kind == k }
}

// MatchToken selects the response carrying a given token.
func MatchToken(k Kind, token uint64) Match {
	return func(m *Message) bool { return m.Kind == k && m.Token == token }
}

// MatchSrcTag selects mp-layer messages by kind, source endpoint and tag.
func MatchSrcTag(k Kind, src Addr, tag int) Match {
	return func(m *Message) bool { return m.Kind == k && m.Src == src && m.Tag == tag }
}

// MatchAny selects every message.
func MatchAny(*Message) bool { return true }

// Queue is an unbounded in-order message queue with matched removal. It is
// not self-synchronizing; each fabric wraps it with its own blocking
// discipline.
type Queue struct {
	items []*Message
}

// Put appends m.
func (q *Queue) Put(m *Message) { q.items = append(q.items, m) }

// TryPop removes and returns the first message satisfying match, or nil.
func (q *Queue) TryPop(match Match) *Message {
	for i, m := range q.items {
		if match(m) {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return m
		}
	}
	return nil
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.items) }
