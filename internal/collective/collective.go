// Package collective implements the process-to-process collective
// algorithms the paper builds its combined barrier from:
//
//   - the binary-exchange (recursive-doubling) element-wise sum of the
//     op_init[] arrays — Figure 2 of the paper — in log₂(N) phases whose
//     messages overlap, so the communication time is log₂(N) one-way
//     latencies;
//   - the binary-exchange barrier used both by MPI_Barrier and by stage 3
//     of the new ARMCI_Barrier;
//   - a dissemination barrier for process counts that are not powers of
//     two;
//   - a linear central barrier kept as an ablation baseline;
//   - a radix-r k-nomial tree barrier/allreduce and a hierarchical
//     two-level barrier (per-node leader + inter-node exchange) for the
//     large-N sweeps — see knomial.go.
//
// All algorithms communicate directly between user processes with
// KindColl messages; data servers are not involved.
package collective

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"armci/internal/msg"
	"armci/internal/transport"
)

// Comm sequences the collectives of one process. Every process of a
// cluster must call the same collectives in the same order with the same
// operation kinds (the usual MPI rule); the internal sequence number keeps
// concurrent phases of consecutive collectives from matching each other's
// messages.
type Comm struct {
	env   transport.Env
	seq   int
	radix int       // k-nomial tree radix (0 = DefaultRadix)
	nodes *topology // lazily derived node layout (see knomial.go)
}

// New builds a collective communicator over env.
func New(env transport.Env) *Comm {
	return &Comm{env: env}
}

// Env returns the underlying environment.
func (c *Comm) Env() transport.Env { return c.env }

// tag composes the matching tag of one phase of the current collective.
func (c *Comm) tag(phase int) int { return c.seq<<16 | phase }

// sendTo ships an optional payload phase message to rank.
func (c *Comm) sendTo(rank, phase int, data []byte) {
	c.env.Send(msg.User(rank), &msg.Message{
		Kind: msg.KindColl,
		Tag:  c.tag(phase),
		Data: data,
	})
}

// recvFrom blocks for the phase message from rank.
func (c *Comm) recvFrom(rank, phase int) *msg.Message {
	return c.env.Recv(msg.MatchSrcTag(msg.KindColl, msg.User(rank), c.tag(phase)))
}

// BarrierAlg selects a barrier implementation.
type BarrierAlg uint8

const (
	// BarrierAuto picks pairwise exchange for power-of-two process
	// counts and dissemination otherwise.
	BarrierAuto BarrierAlg = iota
	// BarrierPairwise is the binary-exchange pattern of the paper
	// (partner = rank XOR 2^k); power-of-two process counts only.
	BarrierPairwise
	// BarrierDissemination is the generalized log-depth barrier
	// (send to rank+2^k mod N, receive from rank-2^k mod N).
	BarrierDissemination
	// BarrierCentral is the linear gather-to-0/release baseline.
	BarrierCentral
	// BarrierKnomial is the radix-r tree barrier (gather up the
	// k-nomial tree, release down it); radix set by SetRadix.
	BarrierKnomial
	// BarrierHierarchical is the two-level barrier: intra-node
	// gather/release through a per-node leader plus a dissemination
	// exchange among the leaders only.
	BarrierHierarchical
)

func (a BarrierAlg) String() string {
	switch a {
	case BarrierAuto:
		return "auto"
	case BarrierPairwise:
		return "pairwise"
	case BarrierDissemination:
		return "dissemination"
	case BarrierCentral:
		return "central"
	case BarrierKnomial:
		return "knomial"
	case BarrierHierarchical:
		return "hierarchical"
	}
	return fmt.Sprintf("BarrierAlg(%d)", uint8(a))
}

// Barrier synchronizes all processes: no process returns before every
// process has entered.
func (c *Comm) Barrier(alg BarrierAlg) {
	n := c.env.Size()
	if n == 1 {
		c.seq++
		return
	}
	if alg == BarrierAuto {
		if bits.OnesCount(uint(n)) == 1 {
			alg = BarrierPairwise
		} else {
			alg = BarrierDissemination
		}
	}
	switch alg {
	case BarrierPairwise:
		c.barrierPairwise()
	case BarrierDissemination:
		c.barrierDissemination()
	case BarrierCentral:
		c.barrierCentral()
	case BarrierKnomial:
		c.barrierKnomial()
	case BarrierHierarchical:
		c.barrierHierarchical()
	default:
		panic(fmt.Sprintf("collective: unknown barrier algorithm %v", alg))
	}
	c.seq++
}

// barrierPairwise runs log₂(N) phases of partner exchange; the two
// messages of a phase overlap, so each phase costs one one-way latency.
func (c *Comm) barrierPairwise() {
	n, me := c.env.Size(), c.env.Rank()
	if bits.OnesCount(uint(n)) != 1 {
		panic(fmt.Sprintf("collective: pairwise barrier requires a power-of-two process count, got %d", n))
	}
	for x, phase := 1, 0; x < n; x, phase = x<<1, phase+1 {
		partner := me ^ x
		c.sendTo(partner, phase, nil)
		c.recvFrom(partner, phase)
	}
}

// barrierDissemination runs ceil(log₂(N)) rounds; in round k the process
// signals rank+2^k and waits for rank-2^k (mod N).
func (c *Comm) barrierDissemination() {
	n, me := c.env.Size(), c.env.Rank()
	for x, phase := 1, 0; x < n; x, phase = x<<1, phase+1 {
		to := (me + x) % n
		from := (me - x%n + n) % n
		c.sendTo(to, phase, nil)
		c.recvFrom(from, phase)
	}
}

// barrierCentral gathers at rank 0 and releases — 2(N−1) messages with a
// serial bottleneck at the root; the ablation baseline.
func (c *Comm) barrierCentral() {
	n, me := c.env.Size(), c.env.Rank()
	if me == 0 {
		for r := 1; r < n; r++ {
			c.env.Recv(msg.MatchSrcTag(msg.KindColl, msg.User(r), c.tag(0)))
		}
		for r := 1; r < n; r++ {
			c.sendTo(r, 1, nil)
		}
		return
	}
	c.sendTo(0, 0, nil)
	c.recvFrom(0, 1)
}

// AllReduceSumInt64 element-wise sums vec across all processes; on return
// every process holds the identical summed vector. For power-of-two
// process counts this is exactly the binary-exchange algorithm of the
// paper's Figure 2, costing log₂(N) overlapped message latencies. Other
// process counts fold the extra ranks onto the power-of-two core first
// (two extra latencies), keeping log depth.
func (c *Comm) AllReduceSumInt64(vec []int64) {
	n, me := c.env.Size(), c.env.Rank()
	if n == 1 {
		c.seq++
		return
	}
	pow2 := 1 << (bits.Len(uint(n)) - 1) // largest power of two <= n
	rem := n - pow2
	phase := 0

	// Fold phase: ranks >= pow2 contribute their vector to rank-pow2 and
	// wait for the result afterwards.
	if rem > 0 {
		if me >= pow2 {
			c.sendTo(me-pow2, phase, encodeVec(vec))
			m := c.recvFrom(me-pow2, 1<<16-1)
			decodeVecInto(vec, m.Data)
			c.seq++
			return
		}
		if me < rem {
			m := c.recvFrom(me+pow2, phase)
			addVec(vec, m.Data)
		}
		phase++
	}

	// Binary exchange over the power-of-two core (Figure 2).
	for x := pow2 / 2; x > 0; x /= 2 {
		partner := me ^ x
		c.sendTo(partner, phase, encodeVec(vec))
		m := c.recvFrom(partner, phase)
		addVec(vec, m.Data)
		phase++
	}

	// Unfold phase: return the result to the folded ranks.
	if rem > 0 && me < rem {
		c.sendTo(me+pow2, 1<<16-1, encodeVec(vec))
	}
	c.seq++
}

// AllReduceSumFloat64 element-wise sums a float64 vector across all
// processes with the same binary-exchange pattern as AllReduceSumInt64.
// Because float addition is not associative, every process applies the
// partial sums in the identical exchange order, so all processes return
// bit-identical results (though a different process count may round
// differently).
func (c *Comm) AllReduceSumFloat64(vec []float64) {
	n, me := c.env.Size(), c.env.Rank()
	if n == 1 {
		c.seq++
		return
	}
	pow2 := 1 << (bits.Len(uint(n)) - 1)
	rem := n - pow2
	phase := 0

	if rem > 0 {
		if me >= pow2 {
			c.sendTo(me-pow2, phase, encodeFloatVec(vec))
			m := c.recvFrom(me-pow2, 1<<16-1)
			decodeFloatVecInto(vec, m.Data)
			c.seq++
			return
		}
		if me < rem {
			m := c.recvFrom(me+pow2, phase)
			addFloatVec(vec, m.Data)
		}
		phase++
	}

	for x := pow2 / 2; x > 0; x /= 2 {
		partner := me ^ x
		c.sendTo(partner, phase, encodeFloatVec(vec))
		m := c.recvFrom(partner, phase)
		addFloatVec(vec, m.Data)
		phase++
	}

	if rem > 0 && me < rem {
		c.sendTo(me+pow2, 1<<16-1, encodeFloatVec(vec))
	}
	c.seq++
}

func encodeFloatVec(vec []float64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeFloatVecInto(vec []float64, data []byte) {
	if len(data) != 8*len(vec) {
		panic(fmt.Sprintf("collective: vector payload of %d bytes for %d elements", len(data), len(vec)))
	}
	for i := range vec {
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

func addFloatVec(vec []float64, data []byte) {
	if len(data) != 8*len(vec) {
		panic(fmt.Sprintf("collective: vector payload of %d bytes for %d elements", len(data), len(vec)))
	}
	for i := range vec {
		vec[i] += math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

func encodeVec(vec []int64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func decodeVecInto(vec []int64, data []byte) {
	if len(data) != 8*len(vec) {
		panic(fmt.Sprintf("collective: vector payload of %d bytes for %d elements", len(data), len(vec)))
	}
	for i := range vec {
		vec[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

func addVec(vec []int64, data []byte) {
	if len(data) != 8*len(vec) {
		panic(fmt.Sprintf("collective: vector payload of %d bytes for %d elements", len(data), len(vec)))
	}
	for i := range vec {
		vec[i] += int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
}
