package collective

import (
	"fmt"
	"testing"

	"armci/internal/model"
	"armci/internal/transport"
)

// TestAllReduceEdgeShapes drives the reductions through the shapes the
// tree/dissemination exchanges get wrong first: the empty vector, a
// single rank, and every non-power-of-two size up to 9 ranks.
func TestAllReduceEdgeShapes(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 5, 6, 7, 9} {
		for _, width := range []int{0, 1, 3} {
			t.Run(fmt.Sprintf("procs=%d/width=%d", procs, width), func(t *testing.T) {
				runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
					r := int64(env.Rank())
					vec := make([]int64, width)
					for i := range vec {
						vec[i] = r + int64(i)*100
					}
					c.AllReduceSumInt64(vec)
					// Every rank must hold sum over q of (q + 100*i).
					base := int64(procs * (procs - 1) / 2)
					for i := range vec {
						want := base + int64(i)*100*int64(procs)
						if vec[i] != want {
							panic(fmt.Sprintf("rank %d: int64 slot %d = %d, want %d", env.Rank(), i, vec[i], want))
						}
					}

					fvec := make([]float64, width)
					for i := range fvec {
						fvec[i] = float64(env.Rank()) + float64(i)*0.5
					}
					c.AllReduceSumFloat64(fvec)
					for i := range fvec {
						want := float64(base) + float64(i)*0.5*float64(procs)
						if fvec[i] != want {
							panic(fmt.Sprintf("rank %d: float64 slot %d = %v, want %v", env.Rank(), i, fvec[i], want))
						}
					}
				})
			})
		}
	}
}

// TestBarrierEdgeSizes runs the size-agnostic barrier algorithms at the
// degenerate and non-power-of-two sizes (pairwise is power-of-two-only
// by contract — see TestPairwiseBarrierRejectsOddSizes); the safety
// property is covered by TestBarrierSafety, so completion alone is the
// assertion here.
func TestBarrierEdgeSizes(t *testing.T) {
	for _, alg := range []BarrierAlg{BarrierDissemination, BarrierCentral, BarrierAuto} {
		for _, procs := range []int{1, 3, 5, 7} {
			t.Run(fmt.Sprintf("%v/procs=%d", alg, procs), func(t *testing.T) {
				runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
					for i := 0; i < 3; i++ {
						c.Barrier(alg)
					}
				})
			})
		}
	}
}

// TestPairwiseBarrierRejectsOddSizes pins the documented contract: the
// pairwise exchange is defined only for power-of-two process counts and
// must refuse loudly, not hang, elsewhere. (Size 1 short-circuits before
// algorithm selection.)
func TestPairwiseBarrierRejectsOddSizes(t *testing.T) {
	runCluster(t, 3, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
		defer func() {
			if recover() == nil {
				panic("pairwise barrier accepted 3 processes")
			}
		}()
		c.Barrier(BarrierPairwise)
	})
}

// TestSequentialCollectivesKeepTagsDistinct interleaves reductions and
// barriers on one communicator: the per-call tag sequence must keep a
// slow rank's phase-k traffic from matching a fast rank's phase-k+1
// receive.
func TestSequentialCollectivesKeepTagsDistinct(t *testing.T) {
	runCluster(t, 5, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
		for round := 1; round <= 4; round++ {
			vec := []int64{int64(env.Rank() + round)}
			c.AllReduceSumInt64(vec)
			want := int64(5*(5-1)/2 + 5*round)
			if vec[0] != want {
				panic(fmt.Sprintf("round %d: sum %d, want %d", round, vec[0], want))
			}
			c.Barrier(BarrierAuto)
		}
	})
}
