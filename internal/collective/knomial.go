// K-nomial and hierarchical two-level collectives.
//
// The binary-exchange algorithms of the paper stop being the right shape
// past a few dozen ranks: a radix-r (k-nomial) tree trades message count
// for depth (⌈log_r N⌉ rounds instead of ⌈log₂ N⌉), and on multi-core
// nodes a two-level scheme — gather/release through a per-node leader,
// inter-node exchange among leaders only — keeps all but one message per
// node off the wire. Both are driven by the node topology the transport
// already carries (env.Node), so the same code serves procnet's real
// `-ppn` layout and the synthetic Topology of the in-process fabrics.
package collective

import "fmt"

// DefaultRadix is the k-nomial tree radix used when none is configured.
// Radix 4 is the sweet spot in the modeled costs: half the rounds of the
// binomial tree while the per-round fan-in (3 receives) still overlaps
// within one wire latency.
const DefaultRadix = 4

// releasePhase tags the leader→member release of the hierarchical
// collectives. It shares the 16-bit phase space of tag() with the
// inter-leader exchange phases, which stay below log₂(nodes)+2.
const releasePhase = 1 << 15

// SetRadix sets the k-nomial tree radix used by BarrierKnomial and the
// tree-based allreduce. Radix must be at least 2 (radix 2 is exactly the
// binomial tree). All processes must configure the same radix.
func (c *Comm) SetRadix(radix int) {
	if radix < 2 {
		panic(fmt.Sprintf("collective: k-nomial radix must be >= 2, got %d", radix))
	}
	c.radix = radix
}

// Radix returns the configured k-nomial radix (DefaultRadix if unset).
func (c *Comm) Radix() int {
	if c.radix == 0 {
		return DefaultRadix
	}
	return c.radix
}

// KnomialTree computes rank me's position in the radix-r k-nomial tree
// over ranks [0,n) rooted at 0: the parent (-1 for the root) and the
// children in strictly increasing rank order.
//
// The tree is digit-based: write me in base radix; the parent clears the
// least-significant nonzero digit, and the children set one digit below
// that position to each nonzero value (the root owns every position).
// This partitions [0,n) for every n, including non-powers of the radix,
// and the depth is at most ⌈log_radix n⌉.
func KnomialTree(n, me, radix int) (parent int, children []int) {
	if radix < 2 {
		panic(fmt.Sprintf("collective: k-nomial radix must be >= 2, got %d", radix))
	}
	if n < 1 || me < 0 || me >= n {
		panic(fmt.Sprintf("collective: rank %d outside tree over [0,%d)", me, n))
	}
	// limit = radix^L where L is the position of me's least-significant
	// nonzero digit: children may set any digit position below L.
	limit := n // the root owns every digit position that fits under n
	parent = -1
	if me != 0 {
		pow := 1
		for (me/pow)%radix == 0 {
			pow *= radix
		}
		parent = me - (me/pow%radix)*pow
		limit = pow
	}
	for pow := 1; pow < limit; pow *= radix {
		for d := 1; d < radix; d++ {
			child := me + d*pow
			if child >= n {
				break
			}
			children = append(children, child)
		}
	}
	return parent, children
}

// barrierKnomial gathers up the radix-r tree (every rank reports to its
// parent once all children reported) and releases back down it.
func (c *Comm) barrierKnomial() {
	n, me := c.env.Size(), c.env.Rank()
	parent, children := KnomialTree(n, me, c.Radix())
	for _, child := range children {
		c.recvFrom(child, 0)
	}
	if parent >= 0 {
		c.sendTo(parent, 0, nil)
		c.recvFrom(parent, 1)
	}
	for _, child := range children {
		c.sendTo(child, 1, nil)
	}
}

// topology is the per-node view every rank derives from env.Node: its
// node's leader (the lowest rank on the node), the co-located ranks, and
// the leaders of all nodes in first-appearance order. Every rank scans
// ranks 0..n-1 in the same order, so all ranks agree on every list.
type topology struct {
	leader  int
	members []int // ranks of my node, ascending (leader first)
	leaders []int // one leader per node, by first appearance
}

func (c *Comm) topo() *topology {
	if c.nodes != nil {
		return c.nodes
	}
	n, me := c.env.Size(), c.env.Rank()
	myNode := c.env.Node(me)
	t := &topology{}
	seen := make(map[int]bool)
	for r := 0; r < n; r++ {
		node := c.env.Node(r)
		if !seen[node] {
			seen[node] = true
			t.leaders = append(t.leaders, r)
		}
		if node == myNode {
			t.members = append(t.members, r)
		}
	}
	t.leader = t.members[0]
	c.nodes = t
	return t
}

// leaderIndex returns my position in the leaders list.
func (t *topology) leaderIndex(me int) int {
	for i, l := range t.leaders {
		if l == me {
			return i
		}
	}
	panic(fmt.Sprintf("collective: rank %d is not a node leader", me))
}

// barrierHierarchical is the two-level barrier: non-leaders report to
// their node leader and wait for its release; leaders gather their node,
// run a dissemination barrier among themselves (one inter-node message
// per node per round), then release their members. On a single node it
// degenerates to the central barrier with zero wire traffic.
func (c *Comm) barrierHierarchical() {
	me := c.env.Rank()
	t := c.topo()
	if me != t.leader {
		c.sendTo(t.leader, 0, nil)
		c.recvFrom(t.leader, releasePhase)
		return
	}
	for _, m := range t.members[1:] {
		c.recvFrom(m, 0)
	}
	k := len(t.leaders)
	idx := t.leaderIndex(me)
	for x, phase := 1, 1; x < k; x, phase = x<<1, phase+1 {
		to := t.leaders[(idx+x)%k]
		from := t.leaders[(idx-x%k+k)%k]
		c.sendTo(to, phase, nil)
		c.recvFrom(from, phase)
	}
	for _, m := range t.members[1:] {
		c.sendTo(m, releasePhase, nil)
	}
}

// AllReduceSumInt64Alg element-wise sums vec across all processes using
// the communication pattern matching alg: BarrierKnomial reduces and
// broadcasts over the radix-r tree, BarrierHierarchical sums within each
// node at the leader and runs a k-nomial reduce+broadcast among leaders
// only, and every other algorithm uses the paper's binary exchange
// (AllReduceSumInt64). All variants leave the identical summed vector on
// every process.
func (c *Comm) AllReduceSumInt64Alg(vec []int64, alg BarrierAlg) {
	switch alg {
	case BarrierKnomial:
		c.allReduceKnomial(vec)
	case BarrierHierarchical:
		c.allReduceHierarchical(vec)
	default:
		c.AllReduceSumInt64(vec)
	}
}

// allReduceKnomial reduces up the radix-r tree (phase 0) and broadcasts
// the root's total back down it (phase 1): 2·depth latencies, but only
// n-1 messages per direction versus binary exchange's n·log₂ n.
func (c *Comm) allReduceKnomial(vec []int64) {
	n, me := c.env.Size(), c.env.Rank()
	if n == 1 {
		c.seq++
		return
	}
	parent, children := KnomialTree(n, me, c.Radix())
	for _, child := range children {
		m := c.recvFrom(child, 0)
		addVec(vec, m.Data)
	}
	if parent >= 0 {
		c.sendTo(parent, 0, encodeVec(vec))
		m := c.recvFrom(parent, 1)
		decodeVecInto(vec, m.Data)
	}
	for _, child := range children {
		c.sendTo(child, 1, encodeVec(vec))
	}
	c.seq++
}

// allReduceHierarchical sums member vectors at each node leader (phase
// 0), reduce+broadcasts among the leaders over a k-nomial tree spanning
// the leaders list (phases 1 and 2), and releases the total to the
// members (releasePhase). Only the leader exchange crosses node
// boundaries, so the wire carries one payload per node per tree edge.
func (c *Comm) allReduceHierarchical(vec []int64) {
	n, me := c.env.Size(), c.env.Rank()
	if n == 1 {
		c.seq++
		return
	}
	t := c.topo()
	if me != t.leader {
		c.sendTo(t.leader, 0, encodeVec(vec))
		m := c.recvFrom(t.leader, releasePhase)
		decodeVecInto(vec, m.Data)
		c.seq++
		return
	}
	for _, m := range t.members[1:] {
		got := c.recvFrom(m, 0)
		addVec(vec, got.Data)
	}
	k := len(t.leaders)
	idx := t.leaderIndex(me)
	gparent, gchildren := KnomialTree(k, idx, c.Radix())
	for _, gc := range gchildren {
		got := c.recvFrom(t.leaders[gc], 1)
		addVec(vec, got.Data)
	}
	if gparent >= 0 {
		c.sendTo(t.leaders[gparent], 1, encodeVec(vec))
		got := c.recvFrom(t.leaders[gparent], 2)
		decodeVecInto(vec, got.Data)
	}
	for _, gc := range gchildren {
		c.sendTo(t.leaders[gc], 2, encodeVec(vec))
	}
	for _, m := range t.members[1:] {
		c.sendTo(m, releasePhase, encodeVec(vec))
	}
	c.seq++
}
