package collective

import (
	"fmt"
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/trace"
	"armci/internal/transport"
)

// runClusterPPN is runCluster with a node topology: consecutive ranks
// share a node, ppn per node.
func runClusterPPN(t *testing.T, procs, ppn int, params model.Params, stats *trace.Stats,
	body func(env transport.Env, c *Comm)) *transport.SimFabric {
	t.Helper()
	f, err := transport.NewSim(transport.Config{Procs: procs, ProcsPerNode: ppn, Model: params, Trace: stats})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < procs; r++ {
		f.SpawnUser(r, func(env transport.Env) {
			body(env, New(env))
		})
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return f
}

// ceilLog returns ⌈log_radix n⌉ computed by integer multiplication.
func ceilLog(n, radix int) int {
	d, pow := 0, 1
	for pow < n {
		pow *= radix
		d++
	}
	return d
}

// TestKnomialTreeEdgeShapes is the construction table test: for every
// radix ∈ {2,3,4,8} and the sizes that break digit arithmetic first
// (N=1, N=radix, N=radix^k±1, radix>N), the parent/children lists of all
// ranks must partition [0,N) into exactly one tree rooted at 0, children
// must be strictly increasing, and the tree depth must be ⌈log_r N⌉ or
// one less (exactly ⌈log_r N⌉ when N is a power of the radix).
func TestKnomialTreeEdgeShapes(t *testing.T) {
	sizes := func(r int) []int {
		s := []int{1, 2, r - 1, r, r + 1, r*r - 1, r * r, r*r + 1, r*r*r - 1, r * r * r, r*r*r + 1}
		// radix > N shapes: every rank is a direct child of the root.
		s = append(s, r/2+1)
		var out []int
		for _, n := range s {
			if n >= 1 {
				out = append(out, n)
			}
		}
		return out
	}
	for _, radix := range []int{2, 3, 4, 8} {
		for _, n := range sizes(radix) {
			t.Run(fmt.Sprintf("radix=%d/n=%d", radix, n), func(t *testing.T) {
				parents := make([]int, n)
				childOf := make(map[int]int) // child rank -> parent that lists it
				for me := 0; me < n; me++ {
					parent, children := KnomialTree(n, me, radix)
					parents[me] = parent
					for i, ch := range children {
						if ch <= me || ch >= n {
							t.Fatalf("rank %d lists child %d outside (%d,%d)", me, ch, me, n)
						}
						if i > 0 && ch <= children[i-1] {
							t.Fatalf("rank %d children not strictly increasing: %v", me, children)
						}
						if prev, dup := childOf[ch]; dup {
							t.Fatalf("rank %d claimed by parents %d and %d", ch, prev, me)
						}
						childOf[ch] = me
					}
				}
				// Every rank except the root is someone's child, and the
				// parent fields agree with the children lists.
				if parents[0] != -1 {
					t.Fatalf("root parent = %d, want -1", parents[0])
				}
				for me := 1; me < n; me++ {
					p, ok := childOf[me]
					if !ok {
						t.Fatalf("rank %d appears in no children list", me)
					}
					if p != parents[me] {
						t.Fatalf("rank %d: parent %d but listed as child of %d", me, parents[me], p)
					}
				}
				// Depth: follow parent chains; acyclic by the child>parent
				// ordering above, so chains terminate at the root.
				depth := 0
				for me := 0; me < n; me++ {
					d := 0
					for r := me; parents[r] != -1; r = parents[r] {
						d++
					}
					if d > depth {
						depth = d
					}
				}
				want := ceilLog(n, radix)
				if n == 1 {
					if depth != 0 {
						t.Fatalf("single-rank tree has depth %d", depth)
					}
					return
				}
				if depth != want && depth != want-1 {
					t.Fatalf("depth %d, want ⌈log_%d %d⌉ = %d (or one less)", depth, radix, n, want)
				}
				if pow := powOf(n, radix); pow && depth != want {
					t.Fatalf("N=%d is radix^%d but depth %d != %d", n, want, depth, want)
				}
			})
		}
	}
}

func powOf(n, radix int) bool {
	for p := 1; p <= n; p *= radix {
		if p == n {
			return true
		}
	}
	return false
}

// TestKnomialTreeRejectsBadArgs pins the loud-failure contract.
func TestKnomialTreeRejectsBadArgs(t *testing.T) {
	for _, bad := range []func(){
		func() { KnomialTree(4, 0, 1) },
		func() { KnomialTree(4, 4, 2) },
		func() { KnomialTree(4, -1, 2) },
		func() { KnomialTree(0, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("KnomialTree accepted invalid arguments")
				}
			}()
			bad()
		}()
	}
}

// TestKnomialBarrierSafety runs the fundamental invariant over radices
// and sizes, including non-powers of the radix: no rank may leave the
// barrier before the last rank entered.
func TestKnomialBarrierSafety(t *testing.T) {
	for _, radix := range []int{2, 3, 4, 8} {
		for _, procs := range []int{2, 5, 8, 16, 27} {
			t.Run(fmt.Sprintf("radix=%d/procs=%d", radix, procs), func(t *testing.T) {
				enter := make([]time.Duration, procs)
				exit := make([]time.Duration, procs)
				runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
					c.SetRadix(radix)
					env.Clock().Sleep(time.Duration(env.Rank()*41) * time.Microsecond)
					enter[env.Rank()] = env.Clock().Now()
					c.Barrier(BarrierKnomial)
					exit[env.Rank()] = env.Clock().Now()
				})
				var lastEnter, firstExit time.Duration
				for r := 0; r < procs; r++ {
					if enter[r] > lastEnter {
						lastEnter = enter[r]
					}
					if r == 0 || exit[r] < firstExit {
						firstExit = exit[r]
					}
				}
				if firstExit < lastEnter {
					t.Fatalf("rank left at %v before the last entered at %v", firstExit, lastEnter)
				}
			})
		}
	}
}

// TestKnomialBarrierMessageCount pins the complexity: a tree barrier
// moves exactly 2(N−1) messages regardless of radix — the reason it
// wins over dissemination's N·⌈log₂N⌉ at large N.
func TestKnomialBarrierMessageCount(t *testing.T) {
	for _, radix := range []int{2, 4} {
		for _, procs := range []int{6, 16, 27} {
			stats := trace.New()
			runCluster(t, procs, model.Zero(), stats, func(env transport.Env, c *Comm) {
				c.SetRadix(radix)
				c.Barrier(BarrierKnomial)
			})
			if got, want := stats.Count(msg.KindColl), 2*(procs-1); got != want {
				t.Fatalf("radix %d N=%d moved %d messages, want %d", radix, procs, got, want)
			}
		}
	}
}

// TestHierarchicalBarrierSafety covers node shapes from one-rank-per-node
// (pure leader dissemination) through single-node (pure central) and an
// uneven last node.
func TestHierarchicalBarrierSafety(t *testing.T) {
	shapes := []struct{ procs, ppn int }{
		{8, 2}, {12, 4}, {6, 3}, {5, 2}, {7, 1}, {6, 6}, {9, 4},
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("procs=%d/ppn=%d", s.procs, s.ppn), func(t *testing.T) {
			enter := make([]time.Duration, s.procs)
			exit := make([]time.Duration, s.procs)
			runClusterPPN(t, s.procs, s.ppn, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
				env.Clock().Sleep(time.Duration((s.procs-env.Rank())*23) * time.Microsecond)
				enter[env.Rank()] = env.Clock().Now()
				c.Barrier(BarrierHierarchical)
				exit[env.Rank()] = env.Clock().Now()
			})
			var lastEnter, firstExit time.Duration
			for r := 0; r < s.procs; r++ {
				if enter[r] > lastEnter {
					lastEnter = enter[r]
				}
				if r == 0 || exit[r] < firstExit {
					firstExit = exit[r]
				}
			}
			if firstExit < lastEnter {
				t.Fatalf("rank left at %v before the last entered at %v", firstExit, lastEnter)
			}
		})
	}
}

// TestHierarchicalBarrierWireTraffic proves the point of the two-level
// scheme: member gather/release stays on-node, so only the leader
// dissemination crosses node boundaries — nodes·⌈log₂ nodes⌉ wire
// messages versus N·⌈log₂ N⌉ for the flat algorithm.
func TestHierarchicalBarrierWireTraffic(t *testing.T) {
	const procs, ppn = 8, 4 // 2 nodes
	stats := trace.New()
	stats.SetCapture(true)
	runClusterPPN(t, procs, ppn, model.Zero(), stats, func(env transport.Env, c *Comm) {
		c.Barrier(BarrierHierarchical)
	})
	node := func(a msg.Addr) int { return a.ID / ppn }
	total, wire := 0, 0
	for _, e := range stats.Events() {
		if e.Kind != msg.KindColl {
			continue
		}
		total++
		if node(e.Src) != node(e.Dst) {
			wire++
		}
	}
	// Per node: (ppn−1) gathers + (ppn−1) releases; leaders: 2 nodes × 1
	// dissemination round.
	if want := 2*2*(ppn-1) + 2; total != want {
		t.Fatalf("hierarchical barrier moved %d messages, want %d", total, want)
	}
	if want := 2; wire != want {
		t.Fatalf("%d messages crossed node boundaries, want %d", wire, want)
	}
}

// TestAllReduceSumInt64Alg checks the tree and hierarchical reductions
// against directly computed sums across sizes, radices and node shapes.
func TestAllReduceSumInt64Alg(t *testing.T) {
	shapes := []struct {
		alg   BarrierAlg
		radix int
		procs int
		ppn   int
	}{
		{BarrierKnomial, 2, 6, 1}, {BarrierKnomial, 3, 9, 1}, {BarrierKnomial, 4, 16, 1},
		{BarrierKnomial, 4, 17, 1}, {BarrierKnomial, 8, 5, 1},
		{BarrierHierarchical, 4, 8, 2}, {BarrierHierarchical, 4, 12, 4},
		{BarrierHierarchical, 2, 5, 2}, {BarrierHierarchical, 4, 6, 6}, {BarrierHierarchical, 4, 7, 1},
		{BarrierAuto, 4, 6, 2}, // dispatcher falls back to binary exchange
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("%v/r=%d/procs=%d/ppn=%d", s.alg, s.radix, s.procs, s.ppn), func(t *testing.T) {
			const width = 5
			results := make([][]int64, s.procs)
			runClusterPPN(t, s.procs, s.ppn, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
				c.SetRadix(s.radix)
				me := env.Rank()
				env.Clock().Sleep(time.Duration(me*me*5) * time.Microsecond)
				for round := 0; round < 3; round++ {
					vec := make([]int64, width)
					for i := range vec {
						vec[i] = int64(me + round + i*100)
					}
					c.AllReduceSumInt64Alg(vec, s.alg)
					if round == 2 {
						results[me] = vec
					}
				}
			})
			base := int64(s.procs * (s.procs - 1) / 2)
			for r := 0; r < s.procs; r++ {
				for i := 0; i < width; i++ {
					want := base + int64(s.procs)*int64(2+i*100)
					if results[r][i] != want {
						t.Fatalf("rank %d slot %d = %d, want %d", r, i, results[r][i], want)
					}
				}
			}
		})
	}
}
