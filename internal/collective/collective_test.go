package collective

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/trace"
	"armci/internal/transport"
)

// runCluster executes body on every rank of a simulated cluster and
// returns the fabric for post-run inspection.
func runCluster(t *testing.T, procs int, params model.Params, stats *trace.Stats,
	body func(env transport.Env, c *Comm)) *transport.SimFabric {
	t.Helper()
	f, err := transport.NewSim(transport.Config{Procs: procs, Model: params, Trace: stats})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < procs; r++ {
		f.SpawnUser(r, func(env transport.Env) {
			body(env, New(env))
		})
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBarrierSafety is the fundamental barrier invariant, checkable
// exactly on the virtual clock: no process may leave the barrier before
// the last process has entered it.
func TestBarrierSafety(t *testing.T) {
	algs := []BarrierAlg{BarrierPairwise, BarrierDissemination, BarrierCentral}
	for _, alg := range algs {
		for _, procs := range []int{2, 4, 8, 16} {
			t.Run(fmt.Sprintf("%v/procs=%d", alg, procs), func(t *testing.T) {
				enter := make([]time.Duration, procs)
				exit := make([]time.Duration, procs)
				runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
					// Deterministic skew so ranks arrive at different times.
					env.Clock().Sleep(time.Duration(env.Rank()*37) * time.Microsecond)
					enter[env.Rank()] = env.Clock().Now()
					c.Barrier(alg)
					exit[env.Rank()] = env.Clock().Now()
				})
				var lastEnter, firstExit time.Duration
				for r := 0; r < procs; r++ {
					if enter[r] > lastEnter {
						lastEnter = enter[r]
					}
					if r == 0 || exit[r] < firstExit {
						firstExit = exit[r]
					}
				}
				if firstExit < lastEnter {
					t.Fatalf("rank left the barrier at %v before the last entered at %v", firstExit, lastEnter)
				}
			})
		}
	}
}

// TestBarrierDisseminationAnyN covers non-power-of-two process counts.
func TestBarrierDisseminationAnyN(t *testing.T) {
	for _, procs := range []int{3, 5, 6, 7, 9, 12} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			enter := make([]time.Duration, procs)
			exit := make([]time.Duration, procs)
			runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
				env.Clock().Sleep(time.Duration((procs-env.Rank())*13) * time.Microsecond)
				enter[env.Rank()] = env.Clock().Now()
				c.Barrier(BarrierDissemination)
				exit[env.Rank()] = env.Clock().Now()
			})
			var lastEnter, firstExit time.Duration
			for r := 0; r < procs; r++ {
				if enter[r] > lastEnter {
					lastEnter = enter[r]
				}
				if r == 0 || exit[r] < firstExit {
					firstExit = exit[r]
				}
			}
			if firstExit < lastEnter {
				t.Fatalf("barrier unsafe: exit %v before enter %v", firstExit, lastEnter)
			}
		})
	}
}

// TestBarrierAutoSelects: auto must work for both power-of-two and other
// process counts.
func TestBarrierAutoSelects(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 6, 8} {
		runCluster(t, procs, model.Zero(), nil, func(env transport.Env, c *Comm) {
			c.Barrier(BarrierAuto)
			c.Barrier(BarrierAuto)
		})
	}
}

// TestBarrierPairwiseRejectsNonPow2 documents the constraint.
func TestBarrierPairwiseRejectsNonPow2(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		f.SpawnUser(r, func(env transport.Env) {
			New(env).Barrier(BarrierPairwise)
		})
	}
	if err := f.Run(); err == nil {
		t.Fatal("pairwise barrier accepted 3 processes")
	}
}

// TestBarrierMessageCounts pins the message complexity: pairwise moves
// N·log₂N messages, central 2(N−1).
func TestBarrierMessageCounts(t *testing.T) {
	count := func(alg BarrierAlg, procs int) int {
		stats := trace.New()
		runCluster(t, procs, model.Zero(), stats, func(env transport.Env, c *Comm) {
			c.Barrier(alg)
		})
		return stats.Count(msg.KindColl)
	}
	if got := count(BarrierPairwise, 16); got != 16*4 {
		t.Fatalf("pairwise N=16 moved %d messages, want 64", got)
	}
	if got := count(BarrierCentral, 16); got != 2*15 {
		t.Fatalf("central N=16 moved %d messages, want 30", got)
	}
	if got := count(BarrierDissemination, 8); got != 8*3 {
		t.Fatalf("dissemination N=8 moved %d messages, want 24", got)
	}
}

// TestAllReduceSum checks elementwise sums for many process counts,
// including the non-power-of-two fold/unfold path, against a directly
// computed expectation.
func TestAllReduceSum(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			const width = 9
			rng := rand.New(rand.NewSource(int64(procs)))
			inputs := make([][]int64, procs)
			want := make([]int64, width)
			for r := range inputs {
				inputs[r] = make([]int64, width)
				for i := range inputs[r] {
					inputs[r][i] = rng.Int63n(1000) - 500
					want[i] += inputs[r][i]
				}
			}
			results := make([][]int64, procs)
			runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
				vec := append([]int64(nil), inputs[env.Rank()]...)
				c.AllReduceSumInt64(vec)
				results[env.Rank()] = vec
			})
			for r := 0; r < procs; r++ {
				for i := 0; i < width; i++ {
					if results[r][i] != want[i] {
						t.Fatalf("rank %d element %d = %d, want %d", r, i, results[r][i], want[i])
					}
				}
			}
		})
	}
}

// TestBackToBackCollectivesDoNotCross: consecutive collectives must not
// consume each other's phase messages even when ranks are heavily skewed.
func TestBackToBackCollectivesDoNotCross(t *testing.T) {
	const procs = 8
	sums := make([][]int64, procs)
	runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
		me := env.Rank()
		env.Clock().Sleep(time.Duration(me*me*11) * time.Microsecond)
		for round := 0; round < 5; round++ {
			vec := []int64{int64(me + round)}
			c.AllReduceSumInt64(vec)
			sums[me] = append(sums[me], vec[0])
			c.Barrier(BarrierAuto)
		}
	})
	for r := 0; r < procs; r++ {
		for round := 0; round < 5; round++ {
			want := int64(procs*(procs-1)/2 + procs*round)
			if sums[r][round] != want {
				t.Fatalf("rank %d round %d sum %d, want %d", r, round, sums[r][round], want)
			}
		}
	}
}

// TestAllReduceLogDepth: the binary exchange must finish in log-depth
// virtual time, not linear — the heart of the paper's improvement.
func TestAllReduceLogDepth(t *testing.T) {
	params := model.Myrinet2000()
	duration := func(procs int) time.Duration {
		f, err := transport.NewSim(transport.Config{Procs: procs, Model: params})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < procs; r++ {
			f.SpawnUser(r, func(env transport.Env) {
				vec := make([]int64, procs)
				New(env).AllReduceSumInt64(vec)
			})
		}
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return f.Now()
	}
	d4, d16 := duration(4), duration(16)
	// log2(16)/log2(4) = 2: allow generous slack for payload growth, but
	// reject anything close to the 4x of a linear algorithm.
	if ratio := float64(d16) / float64(d4); ratio > 3 {
		t.Fatalf("allreduce scaling looks linear: t(16)/t(4) = %.2f", ratio)
	}
}

// TestAllReduceSumFloat64 checks float sums for many process counts; all
// ranks must return bit-identical vectors.
func TestAllReduceSumFloat64(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 5, 8, 13} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			const width = 6
			rng := rand.New(rand.NewSource(int64(100 + procs)))
			inputs := make([][]float64, procs)
			for r := range inputs {
				inputs[r] = make([]float64, width)
				for i := range inputs[r] {
					inputs[r][i] = rng.NormFloat64()
				}
			}
			results := make([][]float64, procs)
			runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
				vec := append([]float64(nil), inputs[env.Rank()]...)
				c.AllReduceSumFloat64(vec)
				results[env.Rank()] = vec
			})
			// Bit-identical across ranks.
			for r := 1; r < procs; r++ {
				for i := 0; i < width; i++ {
					if results[r][i] != results[0][i] {
						t.Fatalf("rank %d element %d differs: %v vs %v",
							r, i, results[r][i], results[0][i])
					}
				}
			}
			// Close to the reference sum (associativity differences only).
			for i := 0; i < width; i++ {
				var want float64
				for r := 0; r < procs; r++ {
					want += inputs[r][i]
				}
				if diff := math.Abs(results[0][i] - want); diff > 1e-9 {
					t.Fatalf("element %d = %v, reference %v", i, results[0][i], want)
				}
			}
		})
	}
}

// TestMixedCollectiveSequence interleaves int, float and barrier
// collectives; sequencing must keep them apart.
func TestMixedCollectiveSequence(t *testing.T) {
	const procs = 4
	runCluster(t, procs, model.Myrinet2000(), nil, func(env transport.Env, c *Comm) {
		me := env.Rank()
		env.Clock().Sleep(time.Duration(me*me*7) * time.Microsecond)
		for round := 0; round < 4; round++ {
			iv := []int64{int64(me)}
			c.AllReduceSumInt64(iv)
			if iv[0] != 6 {
				panic(fmt.Sprintf("int round %d: %d", round, iv[0]))
			}
			fv := []float64{0.5}
			c.AllReduceSumFloat64(fv)
			if fv[0] != 2 {
				panic(fmt.Sprintf("float round %d: %v", round, fv[0]))
			}
			c.Barrier(BarrierAuto)
		}
	})
}
