// Package server implements the ARMCI data server: the thread that runs
// on every SMP node and executes remote-memory operations on behalf of
// processes on other nodes (§2 of the paper). One server goroutine serves
// all user processes of its node. The server:
//
//   - applies put / accumulate / fire-and-forget word stores and counts
//     each in the node's op_done cell (the counter the new combined
//     barrier compares against the summed op_init[]);
//   - answers get and read-modify-write requests;
//   - answers fence confirmation requests (FIFO delivery per pair makes
//     the reply a proof that every earlier operation from that origin has
//     completed);
//   - manages the server side of the baseline hybrid lock: it takes
//     tickets on behalf of remote requesters, queues them until their
//     ticket comes up, and processes every unlock (the paper's Figures 3
//     and 4);
//   - models the wake-up penalty of a server thread that sleeps in a
//     blocking receive while idle.
package server

import (
	"encoding/binary"
	"fmt"
	"time"

	"armci/internal/msg"
	"armci/internal/proc"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/transport"
	"armci/internal/wire"
)

// Options configures a server instance.
type Options struct {
	// FenceMode selects whether puts are individually acknowledged.
	FenceMode proc.FenceMode
	// Locks is the cluster lock table; nil if the run creates no locks.
	Locks *proc.LockTable
	// NICFence answers fence round-trips at NIC cost on the host
	// server's channel: the NIC's descriptor queue already knows every
	// prior DMA from this origin has landed (per-pair FIFO), so the
	// reply charges only NICService — no host wake-up, no ServiceFence
	// PCI drain — and leaves the host's busy/idle accounting untouched.
	NICFence bool
}

// waiter is a queued remote lock request.
type waiter struct {
	origin int
	ticket int64
	token  uint64
}

// Server is the per-node data server state. Create one with New (host
// data server) or NewAgent (NIC agent, the paper's §5 future-work
// offload) and drive it with Serve; tests may instead call HandleOne
// directly.
type Server struct {
	env  transport.Env
	opt  Options
	lay  *proc.Layout
	node int
	nic  bool

	// lockQueues[i] holds the remote requests waiting on lock i, in
	// ticket order (appended in arrival order; tickets are issued in
	// arrival order so the slice is sorted by construction).
	lockQueues map[int][]waiter

	// lastFinish is when the server last completed a request, for the
	// idle/wake model.
	lastFinish time.Duration
	everBusy   bool
}

// New builds a server for the node identified by env (a server endpoint).
func New(env transport.Env, lay *proc.Layout, opt Options) *Server {
	if !env.Self().Server {
		panic(fmt.Sprintf("server: endpoint %v is not a server address", env.Self()))
	}
	return &Server{
		env:        env,
		opt:        opt,
		lay:        lay,
		node:       env.Self().ID,
		lockQueues: make(map[int][]waiter),
	}
}

// NewAgent builds a NIC agent for the node identified by env (a NIC
// endpoint, see msg.NICOf). The agent handles atomic operations and
// fence confirmations with NIC-level costs: its processor polls the
// request queue, so there is no wake-up penalty, and the per-request
// service time is model.Params.NICService. Fence confirmations check the
// node's per-origin completion counters instead of relying on message
// FIFO, because put traffic still flows through the host server on a
// different channel.
func NewAgent(env transport.Env, lay *proc.Layout, opt Options) *Server {
	if !env.Self().IsNIC(env.NumNodes()) {
		panic(fmt.Sprintf("server: endpoint %v is not a NIC agent address", env.Self()))
	}
	return &Server{
		env:        env,
		opt:        opt,
		lay:        lay,
		node:       env.Self().ID - env.NumNodes(),
		nic:        true,
		lockQueues: make(map[int][]waiter),
	}
}

// Serve processes requests until the fabric shuts the cluster down (Recv
// returns nil). The loop is crash-aware: when a fault — an injected
// crash, an exhausted retry budget, or a per-op timeout — aborts a rank
// elsewhere in the cluster, the fabric flags shutdown and the server
// drains its mailbox and exits cleanly instead of wedging in Recv; a
// fault during one of the server's own reply sends aborts the server
// with the rank-attributed error (fabrics surface it from Run). Server
// Recvs are deliberately exempt from the per-op deadline: an idle server
// is the normal state, not a stuck one.
func (s *Server) Serve() {
	for {
		m := s.env.Recv(msg.MatchAny)
		if m == nil {
			return
		}
		s.HandleOne(m)
	}
}

// HandleOne executes a single request, including the idle-wake and
// service-time accounting.
func (s *Server) HandleOne(m *msg.Message) {
	p := s.env.Params()
	if s.nic {
		s.handleOneNIC(m)
		return
	}
	if m.Kind == msg.KindFenceReq && s.opt.NICFence {
		// NIC-offload fence: the reply comes straight from the NIC's
		// descriptor-queue state. Every store this origin issued to this
		// node was already applied when its message was handled earlier
		// in this mailbox order (per-pair FIFO), so answering is sound;
		// the host thread never wakes, so neither the wake penalty nor
		// the busy-period clock moves.
		s.env.Charge(p.NICService)
		s.env.Send(msg.User(m.Origin), &msg.Message{
			Kind:   msg.KindFenceAck,
			Origin: m.Origin,
			Token:  m.Token,
		})
		return
	}
	now := s.env.Clock().Now()
	if p.ServerWake > 0 && (!s.everBusy || now-s.lastFinish > p.ServerIdleAfter) {
		// The server thread was asleep in its blocking receive; the
		// request pays the wake-up penalty.
		s.env.Charge(p.ServerWake)
	}
	s.everBusy = true

	switch m.Kind {
	case msg.KindPut:
		s.env.Charge(p.ServiceTime(len(m.Data)))
		s.env.Space().UnpackTo(m.Ptr, m.Stride, m.Data)
		s.completeStore(m)
	case msg.KindAcc:
		s.env.Charge(p.ServiceTime(len(m.Data)))
		s.env.Space().AccumulateStrided(shmem.AccOp(m.Op), m.Ptr, m.Stride, m.Data, m.Scale)
		s.completeStore(m)
	case msg.KindPutV:
		s.env.Charge(p.ServiceTime(len(m.Data)))
		pos := 0
		space := s.env.Space()
		for _, seg := range m.Vec {
			space.Put(seg.Ptr, m.Data[pos:pos+seg.N])
			pos += seg.N
		}
		s.completeStore(m)
	case msg.KindGetV:
		s.env.Charge(p.ServiceTime(m.N))
		space := s.env.Space()
		data := make([]byte, 0, m.N)
		for _, seg := range m.Vec {
			data = append(data, space.Get(seg.Ptr, seg.N)...)
		}
		s.env.Send(msg.User(m.Origin), &msg.Message{
			Kind:   msg.KindGetResp,
			Origin: m.Origin,
			Token:  m.Token,
			Data:   data,
		})
	case msg.KindGet:
		s.env.Charge(p.ServiceTime(m.N))
		data := s.env.Space().PackFrom(m.Ptr, m.Stride)
		s.env.Send(msg.User(m.Origin), &msg.Message{
			Kind:   msg.KindGetResp,
			Origin: m.Origin,
			Token:  m.Token,
			Data:   data,
		})
	case msg.KindBatch:
		s.handleBatch(m)
	case msg.KindRmw:
		s.handleRmw(m)
	case msg.KindFenceReq:
		// FIFO per-pair delivery: every store this origin issued to this
		// server has already been handled, so the server only needs to
		// drain the NIC DMA engine (ServiceFence) to confirm.
		s.env.Charge(p.ServiceSmall + p.ServiceFence)
		s.env.Send(msg.User(m.Origin), &msg.Message{
			Kind:   msg.KindFenceAck,
			Origin: m.Origin,
			Token:  m.Token,
		})
	case msg.KindLockReq:
		s.handleLockReq(m)
	case msg.KindUnlock:
		s.handleUnlock(m)
	default:
		panic(fmt.Sprintf("server: node %d received unexpected %v", s.node, m))
	}
	s.lastFinish = s.env.Clock().Now()
}

// handleBatch unpacks one coalesced frame. The per-message costs — wake
// penalty, receive overhead, the fixed ServiceSmall — are paid once for
// the whole frame (that is the point of batching); each entry then pays
// its own copy cost and advances the fence accounting individually, so
// op_done and per-origin counters agree exactly with the per-entry
// countIssue on the client. The frame travels as one pipeline message:
// loss, retransmission and duplicate suppression apply to the batch as
// a unit, so exactly-once covers all entries or none.
func (s *Server) handleBatch(m *msg.Message) {
	entries, err := wire.DecodeBatch(m.Data)
	if err != nil {
		// Batches are only ever produced by our own coalescer; a
		// malformed one is a protocol bug, not a recoverable condition.
		panic(fmt.Sprintf("server: node %d received malformed batch from rank %d: %v", s.node, m.Origin, err))
	}
	p := s.env.Params()
	s.env.Charge(p.ServiceSmall)
	space := s.env.Space()
	for i := range entries {
		e := &entries[i]
		switch e.Op {
		case wire.BatchPut:
			s.env.Charge(time.Duration(len(e.Data)) * p.ServiceByteTime)
			space.Put(e.Ptr, e.Data)
		case wire.BatchAcc:
			s.env.Charge(time.Duration(len(e.Data)) * p.ServiceByteTime)
			space.Accumulate(shmem.AccOp(e.AccOp), e.Ptr, e.Data, e.Scale)
		case wire.BatchStore:
			s.env.Charge(p.AtomicOp)
			space.Store(e.Ptr, int64(binary.LittleEndian.Uint64(e.Data)))
		}
		s.completeStore(m)
	}
}

// completeStore counts a fence-counted store in op_done (aggregate and
// per-origin) and acknowledges it when the fabric runs in per-put-ack
// mode. The OpComplete trace event is recorded first — before the
// counters advance — so that in the recorded order a completion always
// precedes any barrier exit the fence algorithm justified with it (the
// invariant the conformance fence oracle checks).
func (s *Server) completeStore(m *msg.Message) {
	s.env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpComplete, Rank: m.Origin, Node: s.node,
		Prev: -1, Ticket: -1, Time: s.env.Clock().Now(),
	})
	s.env.Space().FetchAdd(s.lay.OpDone[s.node], 1)
	s.env.Space().FetchAdd(s.lay.PerOrigin[s.node].Add(int64(m.Origin)), 1)
	if s.opt.FenceMode == proc.FenceAck {
		s.env.Send(msg.User(m.Origin), &msg.Message{Kind: msg.KindPutAck, Origin: m.Origin})
	}
}

// handleOneNIC executes one request at NIC cost. The agent serves only
// control traffic: atomics (including the fire-and-forget store hand-off
// path) and fence confirmations.
func (s *Server) handleOneNIC(m *msg.Message) {
	p := s.env.Params()
	s.env.Charge(p.NICService)
	switch m.Kind {
	case msg.KindRmw:
		s.handleRmw(m)
	case msg.KindFenceReq:
		// The NIC tracks DMA completion: wait until every operation the
		// origin had issued when it fenced has completed at this node.
		want := m.Operands[0]
		cell := s.lay.PerOrigin[s.node].Add(int64(m.Origin))
		s.env.WaitUntil("nic-fence", func() bool {
			return s.env.Space().Load(cell) >= want
		})
		s.env.Send(msg.User(m.Origin), &msg.Message{
			Kind:   msg.KindFenceAck,
			Origin: m.Origin,
			Token:  m.Token,
		})
	default:
		panic(fmt.Sprintf("server: NIC agent %d received unexpected %v", s.node, m))
	}
	s.lastFinish = s.env.Clock().Now()
}

// handleRmw executes an atomic word operation on node memory.
func (s *Server) handleRmw(m *msg.Message) {
	p := s.env.Params()
	if s.nic {
		s.env.Charge(p.AtomicOp)
	} else {
		s.env.Charge(p.ServiceSmall + p.AtomicOp)
	}
	space := s.env.Space()
	var out [4]int64
	reply := true
	switch msg.RmwOp(m.Op) {
	case msg.RmwFetchAdd:
		out[0] = space.FetchAdd(m.Ptr, m.Operands[0])
	case msg.RmwSwap:
		out[0] = space.Swap(m.Ptr, m.Operands[0])
	case msg.RmwCAS:
		out[0] = space.CompareAndSwap(m.Ptr, m.Operands[0], m.Operands[1])
	case msg.RmwSwapPair:
		r := space.SwapPair(m.Ptr, shmem.Pair{Hi: m.Operands[0], Lo: m.Operands[1]})
		out[0], out[1] = r.Hi, r.Lo
	case msg.RmwCASPair:
		r := space.CompareAndSwapPair(m.Ptr,
			shmem.Pair{Hi: m.Operands[0], Lo: m.Operands[1]},
			shmem.Pair{Hi: m.Operands[2], Lo: m.Operands[3]})
		out[0], out[1] = r.Hi, r.Lo
	case msg.RmwLoadPair:
		r := space.LoadPair(m.Ptr)
		out[0], out[1] = r.Hi, r.Lo
	case msg.RmwStore:
		space.Store(m.Ptr, m.Operands[0])
		s.completeStore(m)
		reply = false
	case msg.RmwStorePair:
		space.StorePair(m.Ptr, shmem.Pair{Hi: m.Operands[0], Lo: m.Operands[1]})
		s.completeStore(m)
		reply = false
	default:
		panic(fmt.Sprintf("server: node %d: unknown rmw op %d", s.node, m.Op))
	}
	if reply {
		s.env.Send(msg.User(m.Origin), &msg.Message{
			Kind:     msg.KindRmwResp,
			Origin:   m.Origin,
			Token:    m.Token,
			Operands: out,
		})
	}
}

// handleLockReq serves a remote request for the hybrid lock: the server
// performs the fetch-and-increment on the ticket on the requester's
// behalf, grants immediately if its number is up, and queues it otherwise
// (paper Figure 3, steps c-d).
func (s *Server) handleLockReq(m *msg.Message) {
	if s.opt.Locks == nil {
		panic(fmt.Sprintf("server: node %d: lock request %v without a lock table", s.node, m))
	}
	s.env.Charge(s.env.Params().ServiceSmall + s.env.Params().AtomicOp)
	idx := m.Tag
	space := s.env.Space()
	base := s.opt.Locks.TicketCounter[idx]
	ticket := space.FetchAdd(base.Add(proc.TicketWord), 1)
	counter := space.Load(base.Add(proc.CounterWord))
	if ticket == counter {
		s.grant(idx, m.Origin, m.Token, ticket)
		return
	}
	s.lockQueues[idx] = append(s.lockQueues[idx], waiter{origin: m.Origin, ticket: ticket, token: m.Token})
}

// handleUnlock serves a release of the hybrid lock. Local and remote
// holders alike send this message (paper Figure 4): the server increments
// the counter and grants the head of the queue if its ticket came up.
// Local pollers observe the counter directly through shared memory.
func (s *Server) handleUnlock(m *msg.Message) {
	if s.opt.Locks == nil {
		panic(fmt.Sprintf("server: node %d: unlock %v without a lock table", s.node, m))
	}
	s.env.Charge(s.env.Params().ServiceSmall + s.env.Params().AtomicOp)
	idx := m.Tag
	space := s.env.Space()
	base := s.opt.Locks.TicketCounter[idx]
	counter := space.FetchAdd(base.Add(proc.CounterWord), 1) + 1
	q := s.lockQueues[idx]
	if len(q) > 0 && q[0].ticket == counter {
		head := q[0]
		s.lockQueues[idx] = q[1:]
		s.grant(idx, head.origin, head.token, head.ticket)
	}
}

// grant notifies origin that it now holds lock idx. The grant echoes the
// ticket the server took on the requester's behalf so the holder can
// report it (the conformance FIFO oracle checks grants arrive in ticket
// order).
func (s *Server) grant(idx, origin int, token uint64, ticket int64) {
	s.env.Send(msg.User(origin), &msg.Message{
		Kind:     msg.KindLockGrant,
		Origin:   origin,
		Token:    token,
		Tag:      idx,
		Operands: [4]int64{ticket},
	})
}
