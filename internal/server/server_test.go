package server_test

import (
	"fmt"
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/proc"
	"armci/internal/server"
	"armci/internal/shmem"
	"armci/internal/transport"
)

// harness runs one server on a simulated fabric with a single scripted
// user process that speaks the raw protocol.
func harness(t *testing.T, params model.Params, nLocks int,
	script func(env transport.Env, lay *proc.Layout, locks *proc.LockTable)) {
	t.Helper()
	f, err := transport.NewSim(transport.Config{Procs: 1, Model: params})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	var locks *proc.LockTable
	if nLocks > 0 {
		locks = proc.NewLockTable(f.Space(), make([]int, nLocks))
	}
	f.SpawnServer(0, func(env transport.Env) {
		server.New(env, lay, server.Options{Locks: locks}).Serve()
	})
	f.SpawnUser(0, func(env transport.Env) {
		script(env, lay, locks)
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestServerPutIncrementsOpDone(t *testing.T) {
	var f *transport.SimFabric
	{
		var err error
		f, err = transport.NewSim(transport.Config{Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	buf := f.Space().AllocBytes(0, 16)
	f.SpawnServer(0, func(env transport.Env) {
		server.New(env, lay, server.Options{}).Serve()
	})
	f.SpawnUser(0, func(env transport.Env) {
		for i := 0; i < 3; i++ {
			env.Send(msg.ServerOf(0), &msg.Message{
				Kind: msg.KindPut, Origin: 0, Ptr: buf.Add(int64(i)),
				Stride: shmem.Contig(1), Data: []byte{byte(i + 1)},
			})
		}
		env.WaitUntil("done", func() bool { return env.Space().Load(lay.OpDone[0]) == 3 })
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if got := f.Space().Get(buf, 3); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("put data %v", got)
	}
}

func TestServerGetAndRmw(t *testing.T) {
	harness(t, model.Zero(), 0, func(env transport.Env, lay *proc.Layout, _ *proc.LockTable) {
		w := env.Space().AllocWords(0, 2)
		env.Space().Store(w, 40)
		env.Send(msg.ServerOf(0), &msg.Message{
			Kind: msg.KindRmw, Origin: 0, Token: 1, Ptr: w,
			Op: uint8(msg.RmwFetchAdd), Operands: [4]int64{2},
		})
		resp := env.Recv(msg.MatchToken(msg.KindRmwResp, 1))
		if resp.Operands[0] != 40 {
			panic(fmt.Sprintf("rmw returned %d", resp.Operands[0]))
		}
		b := env.Space().AllocBytes(0, 8)
		env.Space().Put(b, []byte{9, 8, 7, 6, 5, 4, 3, 2})
		env.Send(msg.ServerOf(0), &msg.Message{
			Kind: msg.KindGet, Origin: 0, Token: 2, Ptr: b.Add(2),
			Stride: shmem.Contig(4), N: 4,
		})
		g := env.Recv(msg.MatchToken(msg.KindGetResp, 2))
		if len(g.Data) != 4 || g.Data[0] != 7 {
			panic(fmt.Sprintf("get returned %v", g.Data))
		}
	})
}

// TestServerFenceAfterPuts: a fence confirmation must arrive after the
// earlier puts' effects, by FIFO.
func TestServerFenceAfterPuts(t *testing.T) {
	harness(t, model.Myrinet2000(), 0, func(env transport.Env, lay *proc.Layout, _ *proc.LockTable) {
		b := env.Space().AllocBytes(0, 64)
		for i := 0; i < 8; i++ {
			env.Send(msg.ServerOf(0), &msg.Message{
				Kind: msg.KindPut, Origin: 0, Ptr: b.Add(int64(i)),
				Stride: shmem.Contig(1), Data: []byte{0xFF},
			})
		}
		env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindFenceReq, Origin: 0, Token: 9})
		env.Recv(msg.MatchToken(msg.KindFenceAck, 9))
		if env.Space().Load(lay.OpDone[0]) != 8 {
			panic("fence ack before puts completed")
		}
		for _, v := range env.Space().Get(b, 8) {
			if v != 0xFF {
				panic("fence ack before put data landed")
			}
		}
	})
}

// TestServerLockGrantOrder: queued remote lock requests are granted in
// ticket order interleaved with unlocks.
func TestServerLockGrantOrder(t *testing.T) {
	harness(t, model.Zero(), 1, func(env transport.Env, lay *proc.Layout, locks *proc.LockTable) {
		// Request the lock three times on behalf of pseudo-origins; the
		// single scripted user plays all roles (origin is always 0 so
		// the grants come back to us; tokens distinguish them).
		for tok := uint64(1); tok <= 3; tok++ {
			env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindLockReq, Origin: 0, Token: tok, Tag: 0})
		}
		// Only the first is granted immediately.
		env.Recv(msg.MatchToken(msg.KindLockGrant, 1))
		// Release twice; grants 2 and 3 must arrive in order.
		env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindUnlock, Origin: 0, Tag: 0})
		env.Recv(msg.MatchToken(msg.KindLockGrant, 2))
		env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindUnlock, Origin: 0, Tag: 0})
		env.Recv(msg.MatchToken(msg.KindLockGrant, 3))
		env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindUnlock, Origin: 0, Tag: 0})
		// The final unlock is fire-and-forget; wait for the counter to
		// catch the ticket, proving full release.
		base := locks.TicketCounter[0]
		env.WaitUntil("released", func() bool {
			return env.Space().Load(base.Add(proc.TicketWord)) ==
				env.Space().Load(base.Add(proc.CounterWord))
		})
	})
}

// TestServerWakeCharging: after a long idle gap the first request pays
// the wake penalty, observable as added virtual latency.
func TestServerWakeCharging(t *testing.T) {
	params := model.Myrinet2000()
	var hot, cold time.Duration
	harness(t, params, 0, func(env transport.Env, lay *proc.Layout, _ *proc.LockTable) {
		w := env.Space().AllocWords(0, 1)
		rtt := func() time.Duration {
			t0 := env.Clock().Now()
			env.Send(msg.ServerOf(0), &msg.Message{
				Kind: msg.KindRmw, Origin: 0, Token: uint64(t0), Ptr: w,
				Op: uint8(msg.RmwFetchAdd), Operands: [4]int64{1},
			})
			env.Recv(msg.MatchToken(msg.KindRmwResp, uint64(t0)))
			return env.Clock().Now() - t0
		}
		rtt() // wake it once
		hot = rtt()
		env.Clock().Sleep(params.ServerIdleAfter * 3)
		cold = rtt()
	})
	if cold <= hot {
		t.Fatalf("cold RTT %v not above hot RTT %v", cold, hot)
	}
	if diff := cold - hot; diff != params.ServerWake {
		t.Fatalf("wake penalty observed %v, want %v", diff, params.ServerWake)
	}
}

// TestServerRejectsUnknownKind: garbage reaching a server is a loud
// protocol error.
func TestServerRejectsUnknownKind(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	f.SpawnServer(0, func(env transport.Env) {
		server.New(env, lay, server.Options{}).Serve()
	})
	f.SpawnUser(0, func(env transport.Env) {
		env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindGetResp})
		env.Clock().Sleep(time.Second)
	})
	if err := f.Run(); err == nil {
		t.Fatal("server accepted an unexpected message kind")
	}
}

// TestServerLockWithoutTablePanics documents the configuration error.
func TestServerLockWithoutTablePanics(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	f.SpawnServer(0, func(env transport.Env) {
		server.New(env, lay, server.Options{}).Serve()
	})
	f.SpawnUser(0, func(env transport.Env) {
		env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindLockReq, Tag: 0})
		env.Clock().Sleep(time.Second)
	})
	if err := f.Run(); err == nil {
		t.Fatal("lock request without a table should fail the run")
	}
}

// TestNewRejectsUserEndpoint: a server must be constructed on a server
// address.
func TestNewRejectsUserEndpoint(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	f.SpawnUser(0, func(env transport.Env) {
		defer func() {
			if recover() == nil {
				panic("server.New accepted a user endpoint")
			}
		}()
		server.New(env, lay, server.Options{})
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestServerVectorOps(t *testing.T) {
	harness(t, model.Zero(), 0, func(env transport.Env, lay *proc.Layout, _ *proc.LockTable) {
		b := env.Space().AllocBytes(0, 128)
		env.Send(msg.ServerOf(0), &msg.Message{
			Kind: msg.KindPutV, Origin: 0,
			Vec:  []msg.VecSeg{{Ptr: b.Add(3), N: 2}, {Ptr: b.Add(90), N: 1}},
			Data: []byte{11, 22, 33},
		})
		env.WaitUntil("applied", func() bool { return env.Space().Load(lay.OpDone[0]) == 1 })
		env.Send(msg.ServerOf(0), &msg.Message{
			Kind: msg.KindGetV, Origin: 0, Token: 5,
			Vec: []msg.VecSeg{{Ptr: b.Add(90), N: 1}, {Ptr: b.Add(3), N: 2}},
			N:   3,
		})
		resp := env.Recv(msg.MatchToken(msg.KindGetResp, 5))
		if len(resp.Data) != 3 || resp.Data[0] != 33 || resp.Data[1] != 11 || resp.Data[2] != 22 {
			panic(fmt.Sprintf("vector get returned %v", resp.Data))
		}
		// Per-origin counter advanced alongside the aggregate.
		if env.Space().Load(lay.PerOrigin[0]) != 1 {
			panic("per-origin count wrong")
		}
	})
}

func TestServerAccumulateStrided(t *testing.T) {
	harness(t, model.Zero(), 0, func(env transport.Env, lay *proc.Layout, _ *proc.LockTable) {
		b := env.Space().AllocBytes(0, 64)
		one := make([]byte, 16)
		for i := 0; i < 2; i++ {
			for j := 0; j < 8; j++ {
				one[8*i+j] = 0
			}
		}
		// 1.0 little-endian float64 twice
		copy(one[0:], []byte{0, 0, 0, 0, 0, 0, 0xF0, 0x3F})
		copy(one[8:], []byte{0, 0, 0, 0, 0, 0, 0xF0, 0x3F})
		for k := 0; k < 3; k++ {
			env.Send(msg.ServerOf(0), &msg.Message{
				Kind: msg.KindAcc, Origin: 0, Ptr: b,
				Stride: shmem.Strided{Count: []int{8, 2}, Stride: []int64{32}},
				Op:     uint8(shmem.AccFloat64), Scale: 2, Data: one,
			})
		}
		env.WaitUntil("acc", func() bool { return env.Space().Load(lay.OpDone[0]) == 3 })
		got := env.Space().Get(b, 8)
		// 3 accumulations of 2*1.0 = 6.0
		if got[6] != 0x18 || got[7] != 0x40 {
			panic(fmt.Sprintf("accumulated bytes %v", got))
		}
	})
}

// TestServerIdleCycleSleepsAgain: after a busy period and a long gap, the
// wake penalty applies again (not only the first time).
func TestServerIdleCycleSleepsAgain(t *testing.T) {
	params := model.Myrinet2000()
	var rtts []time.Duration
	harness(t, params, 0, func(env transport.Env, lay *proc.Layout, _ *proc.LockTable) {
		w := env.Space().AllocWords(0, 1)
		rtt := func() time.Duration {
			t0 := env.Clock().Now()
			env.Send(msg.ServerOf(0), &msg.Message{
				Kind: msg.KindRmw, Origin: 0, Token: uint64(t0), Ptr: w,
				Op: uint8(msg.RmwFetchAdd), Operands: [4]int64{1},
			})
			env.Recv(msg.MatchToken(msg.KindRmwResp, uint64(t0)))
			return env.Clock().Now() - t0
		}
		for cycle := 0; cycle < 3; cycle++ {
			cold := rtt()
			hot := rtt()
			rtts = append(rtts, cold, hot)
			env.Clock().Sleep(params.ServerIdleAfter * 2)
		}
	})
	for c := 0; c < 3; c++ {
		cold, hot := rtts[2*c], rtts[2*c+1]
		if cold-hot != params.ServerWake {
			t.Fatalf("cycle %d: cold-hot = %v, want wake %v", c, cold-hot, params.ServerWake)
		}
	}
}

// TestAgentServesRmwAndFence: the NIC agent executes atomics and
// per-origin fences at NIC cost and rejects bulk traffic.
func TestAgentServesRmwAndFence(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 1, Model: model.Myrinet2000()})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	f.SpawnServer(1, func(env transport.Env) { // agent id = numNodes(1) + node(0)
		server.NewAgent(env, lay, server.Options{}).Serve()
	})
	f.SpawnUser(0, func(env transport.Env) {
		w := env.Space().AllocWords(0, 1)
		agent := msg.NICOf(0, 1)
		env.Send(agent, &msg.Message{
			Kind: msg.KindRmw, Origin: 0, Token: 1, Ptr: w,
			Op: uint8(msg.RmwSwap), Operands: [4]int64{42},
		})
		resp := env.Recv(msg.MatchToken(msg.KindRmwResp, 1))
		if resp.Operands[0] != 0 || env.Space().Load(w) != 42 {
			panic("agent rmw wrong")
		}
		// A fence for zero issued ops acks immediately.
		env.Send(agent, &msg.Message{Kind: msg.KindFenceReq, Origin: 0, Token: 2})
		env.Recv(msg.MatchToken(msg.KindFenceAck, 2))
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAgentRejectsBulkTraffic(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	f.SpawnServer(1, func(env transport.Env) {
		server.NewAgent(env, lay, server.Options{}).Serve()
	})
	f.SpawnUser(0, func(env transport.Env) {
		b := env.Space().AllocBytes(0, 8)
		env.Send(msg.NICOf(0, 1), &msg.Message{
			Kind: msg.KindPut, Origin: 0, Ptr: b, Stride: shmem.Contig(1), Data: []byte{1},
		})
		env.Clock().Sleep(time.Second)
	})
	if err := f.Run(); err == nil {
		t.Fatal("agent accepted a put")
	}
}

func TestNewAgentRejectsHostAddress(t *testing.T) {
	f, err := transport.NewSim(transport.Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay := proc.NewLayout(f.Space(), 1, 1)
	f.SpawnServer(0, func(env transport.Env) { // host id, not agent id
		defer func() {
			if recover() == nil {
				panic("NewAgent accepted a host server endpoint")
			}
		}()
		server.NewAgent(env, lay, server.Options{})
	})
	f.SpawnUser(0, func(env transport.Env) {})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
}
