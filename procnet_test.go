package armci_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"armci"
	"armci/internal/bench"
	"armci/internal/cluster"
	"armci/internal/elastic"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/trace"
	"armci/internal/workload"
	"armci/mp"
)

// The multi-process tests re-execute this test binary as the launch's
// worker processes (the standard helper-process pattern): TestMain
// dispatches on an environment variable the launcher adds on top of the
// cluster rendezvous variables, so a worker never enters the test
// runner at all.
func TestMain(m *testing.M) {
	switch wl := os.Getenv("ARMCI_PROCNET_TEST_WORKLOAD"); wl {
	case "":
		os.Exit(m.Run())
	case "ring":
		os.Exit(procWorkerRing())
	case "coalring":
		os.Exit(procWorkerCoalRing())
	case "die":
		os.Exit(procWorkerDie())
	case "elastic":
		os.Exit(procWorkerElastic())
	case "fig7":
		os.Exit(procWorkerFig7())
	case "workload":
		os.Exit(procWorkerWorkload())
	case "hier":
		os.Exit(procWorkerHier())
	default:
		fmt.Fprintf(os.Stderr, "unknown ARMCI_PROCNET_TEST_WORKLOAD %q\n", wl)
		os.Exit(2)
	}
}

const (
	procRingProcs = 4
	procRingLaps  = 3
	// procDieVictim is the rank that kills its own process mid-run in
	// the failure-detection test.
	procDieVictim = 1
)

// procTokenRing is the parity workload: a token makes laps around the
// ranks, incremented at every hop, so exactly one message chain is ever
// in flight and the protocol-level message stream is identical on every
// fabric.
func procTokenRing(p *armci.Proc) {
	c := mp.Attach(p)
	me, n := c.Rank(), c.Size()
	token := make([]byte, 8)
	for lap := 0; lap < procRingLaps; lap++ {
		if me == 0 {
			binary.LittleEndian.PutUint64(token, uint64(lap+1))
			c.Send(1%n, lap, token)
			got := c.Recv(n-1, lap)
			if v := binary.LittleEndian.Uint64(got); v != uint64(lap+1+n-1) {
				panic(fmt.Sprintf("lap %d: token came back as %d, want %d", lap, v, lap+1+n-1))
			}
		} else {
			got := c.Recv(me-1, lap)
			binary.LittleEndian.PutUint64(token, binary.LittleEndian.Uint64(got)+1)
			c.Send((me+1)%n, lap, token)
		}
	}
}

// procWorkerRing runs the token ring as one cluster worker and prints
// its local trace fingerprint for the launcher-side parity check.
func procWorkerRing() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "ring worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	rep, err := armci.Run(armci.Options{
		Procs:        we.Procs,
		ProcsPerNode: we.ProcsPerNode,
		Fabric:       armci.FabricProc,
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, procTokenRing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("RING_FP node=%d fp=%s\n", we.Node, rep.Stats.Fingerprint())
	return 0
}

const (
	procCoalLaps       = 3
	procCoalChunks     = 3
	procCoalChunkBytes = 64
)

func procCoalChunk(lap, src, k int) []byte {
	b := make([]byte, procCoalChunkBytes)
	for i := range b {
		b[i] = byte(lap*89 + src*13 + k*5 + i)
	}
	return b
}

// procCoalBaton is the coalesced parity workload: a flag-passing baton
// ring in which each rank streams chunked puts plus a PutFlag notify to
// its right neighbor, and the neighbor only starts sending after
// WaitFlag. Exactly one rank's data traffic is in flight at a time, so
// the stream of batched frames is data-dependent, not
// schedule-dependent.
func procCoalBaton(p *armci.Proc) {
	me, n := p.Rank(), p.Size()
	bufs := p.Malloc(procCoalChunks * procCoalChunkBytes)
	flags := p.MallocWords(1)
	next, prev := (me+1)%n, (me-1+n)%n
	p.MPIBarrier()
	for lap := 0; lap < procCoalLaps; lap++ {
		send := func() {
			for k := 0; k < procCoalChunks-1; k++ {
				p.Put(bufs[next].Add(int64(k*procCoalChunkBytes)), procCoalChunk(lap, me, k))
			}
			p.PutFlag(bufs[next].Add(int64((procCoalChunks-1)*procCoalChunkBytes)),
				procCoalChunk(lap, me, procCoalChunks-1), flags[next], int64(lap+1))
		}
		recv := func() {
			p.WaitFlag(flags[me], int64(lap+1))
			for k := 0; k < procCoalChunks; k++ {
				got := p.Get(bufs[me].Add(int64(k*procCoalChunkBytes)), procCoalChunkBytes)
				if !bytes.Equal(got, procCoalChunk(lap, prev, k)) {
					panic(fmt.Sprintf("lap %d: rank %d read stale chunk %d from rank %d", lap, me, k, prev))
				}
			}
		}
		if me == 0 {
			send()
			recv()
		} else {
			recv()
			send()
		}
	}
}

// coalRingTraffic selects the baton ring's own messages — batched
// frames, puts, flag stores — and excludes collective traffic (Malloc's
// allgather, barriers), whose message order IS schedule-dependent.
func coalRingTraffic(e trace.Event) bool {
	return e.Kind == msg.KindBatch || e.Kind == msg.KindPut || e.Kind == msg.KindRmw
}

// procWorkerCoalRing runs the coalesced baton ring as one cluster
// worker and prints the fingerprint of its local ring traffic for the
// launcher-side parity check.
func procWorkerCoalRing() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "coalring worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	rep, err := armci.Run(armci.Options{
		Procs:        we.Procs,
		ProcsPerNode: we.ProcsPerNode,
		Fabric:       armci.FabricProc,
		Coalesce:     armci.Coalesce{Enabled: true},
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, procCoalBaton)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var ring []trace.Event
	for _, e := range rep.Stats.Events() {
		if coalRingTraffic(e) {
			ring = append(ring, e)
		}
	}
	fmt.Printf("COALRING_FP node=%d fp=%s\n", we.Node, trace.FingerprintEvents(ring))
	return 0
}

// procWorkerDie runs a two-barrier workload in which one rank kills its
// own OS process between the barriers. Survivors must not hang: the
// coordinator attributes the loss and broadcasts the fault, which
// aborts their blocked barrier with the victim's rank.
func procWorkerDie() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "die worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	_, err = armci.Run(armci.Options{
		Procs:        we.Procs,
		ProcsPerNode: we.ProcsPerNode,
		Fabric:       armci.FabricProc,
		OpDeadline:   30 * time.Second,
	}, func(p *armci.Proc) {
		p.Barrier()
		if p.Rank() == procDieVictim {
			os.Exit(7) // die abruptly, mid-protocol, without any goodbye
		}
		p.Barrier() // the victim never arrives; only the fault ends this
	})
	var fe *pipeline.FaultError
	if errors.As(err, &fe) {
		fmt.Printf("DIE_FAULT node=%d rank=%d kind=%q\n", we.Node, fe.Rank, fe.Kind)
		return 0 // expected on every survivor
	}
	fmt.Fprintf(os.Stderr, "want a rank-attributed fault, got %v\n", err)
	return 1
}

// procWorkerElastic runs the elastic-replication workload as a cluster
// worker: it makes this rank's Space recoverable (delta replication to
// the right neighbor each sync epoch) and, when the fault plan arms
// crashrank, one incarnation of the victim exits mid-epoch for real.
// The respawned incarnation restores from the peer replica and the run
// completes with the crash-free fingerprint.
func procWorkerElastic() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "elastic worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	plan, err := armci.ParseFaults(os.Getenv("ARMCI_PROCNET_TEST_FAULTS"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var res elastic.Result
	_, err = armci.Run(armci.Options{
		Procs:  we.Procs,
		Fabric: armci.FabricProc,
		Faults: plan,
	}, func(p *armci.Proc) {
		res = elastic.Run(p, elastic.Config{Steps: 4})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rec := 0
	if res.Recovered {
		rec = 1
	}
	fmt.Printf("ELASTIC_FP node=%d fp=0x%016x rec=%d inc=%d\n", we.Node, res.Fingerprint, rec, res.Incarnation)
	return 0
}

// procWorkloadSeed pins the generator seed of the parity runs, so every
// fabric executes the identical generated program.
const procWorkloadSeed = 42

// procWorkerWorkload runs one generated workload (internal/workload) as
// a cluster worker and prints the fingerprint of its own rank's sends.
// Only user-endpoint traffic is digested: a rank's program is sequential
// so its request stream is program-ordered, while its data server
// interleaves requests from whoever arrives first.
func procWorkerWorkload() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "workload worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	sp, err := workload.Parse(os.Getenv("ARMCI_PROCNET_TEST_SPEC"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep, err := armci.Run(armci.Options{
		Procs:        we.Procs,
		ProcsPerNode: we.ProcsPerNode,
		Fabric:       armci.FabricProc,
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, workload.Build(sp, workload.Config{Seed: procWorkloadSeed}))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var own []trace.Event
	for _, e := range rep.Stats.Events() {
		if e.Src == msg.User(we.Node) { // ppn=1: rank == node
			own = append(own, e)
		}
	}
	fmt.Printf("WL_FP node=%d fp=%s\n", we.Node, trace.FingerprintEvents(own))
	return 0
}

// Hierarchical parity shape: two ranks per worker process, so the
// hierarchical barrier's intra-node stage runs inside one OS process
// while its leader exchange crosses real sockets.
const (
	procHierProcs  = 6
	procHierPPN    = 2
	procHierRounds = 3
)

// procHierBody is the put-round workload of the hierarchical parity
// tests: store to a rotating peer, synchronize with the hierarchical
// combined barrier, verify the fence made the store visible, and
// synchronize again before the next round overwrites. Every send is
// program-ordered and data-dependent, so per-rank fingerprints are
// fabric-invariant.
func procHierBody(p *armci.Proc) {
	me, n := p.Rank(), p.Size()
	slots := p.MallocWords(n)
	for r := 0; r < procHierRounds; r++ {
		shift := 1 + r%(n-1)
		dst := (me + shift) % n
		p.Store(slots[dst].Add(int64(me)), int64((r+1)*1000+me+1))
		p.Barrier()
		src := ((me-shift)%n + n) % n
		if got := p.Load(slots[me].Add(int64(src))); got != int64((r+1)*1000+src+1) {
			panic(fmt.Sprintf("round %d: rank %d read %d from rank %d (store escaped the fence)",
				r, me, got, src))
		}
		p.Barrier()
	}
}

// procHierNodeFingerprint digests one node's sends as per-rank parts
// joined in rank order: a rank's own stream is program-ordered, but the
// interleaving of the node's two ranks in the capture is
// schedule-dependent and must not enter the digest.
func procHierNodeFingerprint(events []trace.Event, node int) string {
	var parts []string
	for r := node * procHierPPN; r < (node+1)*procHierPPN && r < procHierProcs; r++ {
		var own []trace.Event
		for _, e := range events {
			if e.Src == msg.User(r) {
				own = append(own, e)
			}
		}
		parts = append(parts, fmt.Sprintf("r%d:%s", r, trace.FingerprintEvents(own)))
	}
	return strings.Join(parts, ",")
}

// procWorkerHier runs the hierarchical-barrier put rounds as one
// cluster worker (hosting a whole node's ranks) and prints its node's
// per-rank send fingerprints for the launcher-side parity check.
func procWorkerHier() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "hier worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	rep, err := armci.Run(armci.Options{
		Procs:        we.Procs,
		ProcsPerNode: we.ProcsPerNode,
		Fabric:       armci.FabricProc,
		BarrierAlg:   armci.BarrierHierarchical,
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, procHierBody)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("HIER_FP node=%d fp=%s\n", we.Node, procHierNodeFingerprint(rep.Stats.Events(), we.Node))
	return 0
}

// procWorkerFig7 runs the smoke-sized Figure 7 point; the launch size
// comes from the cluster environment.
func procWorkerFig7() int {
	we, ok, err := cluster.FromEnv()
	if err != nil || !ok {
		fmt.Fprintf(os.Stderr, "fig7 worker needs the cluster environment (err=%v)\n", err)
		return 2
	}
	opts := bench.Fig7Opts{BlockDim: 16, PatchDim: 4}
	opts.Reps = 5
	if err := bench.RunFig7ProcWorker(opts, we.Procs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// procSrcNode maps a send event's source endpoint to the node that
// recorded it. The tests run one rank per node with no NIC assist, so
// both user and server IDs are the node index.
func procSrcNode(a msg.Addr) int { return a.ID }

// TestProcnetRingParityWithTCP is the cross-fabric parity check: the
// token ring's send stream, restricted to each node, must be identical
// between the in-process TCP fabric and the multi-process proc fabric.
// Each procnet worker records exactly its own node's sends, so its
// local fingerprint must equal the fingerprint of the TCP run's global
// capture filtered to that node.
func TestProcnetRingParityWithTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	rep, err := armci.Run(armci.Options{
		Procs:        procRingProcs,
		Fabric:       armci.FabricTCP,
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, procTokenRing)
	if err != nil {
		t.Fatalf("tcp baseline: %v", err)
	}
	events := rep.Stats.Events()
	if len(events) == 0 {
		t.Fatal("tcp baseline captured no events")
	}
	want := make([]string, procRingProcs)
	for node := range want {
		var local []trace.Event
		for _, e := range events {
			if procSrcNode(e.Src) == node {
				local = append(local, e)
			}
		}
		want[node] = trace.FingerprintEvents(local)
	}

	got := make([]string, procRingProcs)
	var mu sync.Mutex
	out, err := cluster.Launch(cluster.Spec{
		Procs:      procRingProcs,
		Command:    []string{testExe(t)},
		ExtraEnv:   []string{"ARMCI_PROCNET_TEST_WORKLOAD=ring"},
		Output:     io.Discard,
		RunTimeout: 2 * time.Minute,
		OnLine: func(node int, line string) {
			fp, ok := parseTagged(line, "RING_FP", "fp")
			if !ok {
				return
			}
			mu.Lock()
			got[node] = fp
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("proc launch: %v (outcome %+v)", err, out)
	}
	mu.Lock()
	defer mu.Unlock()
	for node := range want {
		if got[node] == "" {
			t.Errorf("node %d printed no RING_FP line", node)
			continue
		}
		if got[node] != want[node] {
			t.Errorf("node %d send stream diverged between fabrics:\ntcp  %s\nproc %s", node, want[node], got[node])
		}
	}
}

// TestProcnetCoalescedRingParityWithTCP extends the cross-fabric
// parity check to the coalescing path: the flag-passing baton ring's
// batched frames, restricted to each node's sends, must be identical
// between the in-process TCP fabric and the multi-process proc fabric.
// This proves the coalescer packs and flushes frames at deterministic
// program points regardless of substrate, even when each origin runs in
// its own OS process.
func TestProcnetCoalescedRingParityWithTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	rep, err := armci.Run(armci.Options{
		Procs:        procRingProcs,
		Fabric:       armci.FabricTCP,
		Coalesce:     armci.Coalesce{Enabled: true},
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, procCoalBaton)
	if err != nil {
		t.Fatalf("tcp baseline: %v", err)
	}
	events := rep.Stats.Events()
	want := make([]string, procRingProcs)
	sawBatch := false
	for node := range want {
		var local []trace.Event
		for _, e := range events {
			if e.Kind == msg.KindBatch {
				sawBatch = true
			}
			if procSrcNode(e.Src) == node && coalRingTraffic(e) {
				local = append(local, e)
			}
		}
		want[node] = trace.FingerprintEvents(local)
		if want[node] == "" {
			t.Fatalf("tcp baseline captured no ring traffic from node %d", node)
		}
	}
	if !sawBatch {
		t.Fatal("tcp baseline sent no batched frames; coalescing was not exercised")
	}

	got := make([]string, procRingProcs)
	var mu sync.Mutex
	out, err := cluster.Launch(cluster.Spec{
		Procs:      procRingProcs,
		Command:    []string{testExe(t)},
		ExtraEnv:   []string{"ARMCI_PROCNET_TEST_WORKLOAD=coalring"},
		Output:     io.Discard,
		RunTimeout: 2 * time.Minute,
		OnLine: func(node int, line string) {
			fp, ok := parseTagged(line, "COALRING_FP", "fp")
			if !ok {
				return
			}
			mu.Lock()
			got[node] = fp
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("proc launch: %v (outcome %+v)", err, out)
	}
	mu.Lock()
	defer mu.Unlock()
	for node := range want {
		if got[node] == "" {
			t.Errorf("node %d printed no COALRING_FP line", node)
			continue
		}
		if got[node] != want[node] {
			t.Errorf("node %d batched send stream diverged between fabrics:\ntcp  %s\nproc %s", node, want[node], got[node])
		}
	}
}

// TestProcnetWorkloadParityWithTCP extends the per-node parity check to
// generated workloads: each rank's user-endpoint send stream under a
// multi-process launch must match the same rank's stream in an
// in-process TCP run of the identical generated program. prodcons puts
// the notify-ordering path (NbPut + PutFlag + WaitFlag) across real OS
// processes; mixed drives puts, word stores and accumulates sampled
// from the seeded grammar. The workload oracles run armed in both runs
// (Report nil panics), so parity is only ever measured over verified
// executions.
func TestProcnetWorkloadParityWithTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const procs = 4
	for _, spec := range []string{
		"prodcons:chunks=3,bytes=64,depth=2",
		"mixed:ops=8,rounds=1",
	} {
		spec := spec
		t.Run(strings.SplitN(spec, ":", 2)[0], func(t *testing.T) {
			sp, err := workload.Parse(spec)
			if err != nil {
				t.Fatalf("Parse(%q): %v", spec, err)
			}
			rep, err := armci.Run(armci.Options{
				Procs:        procs,
				Fabric:       armci.FabricTCP,
				CaptureTrace: true,
				OpDeadline:   30 * time.Second,
			}, workload.Build(sp, workload.Config{Seed: procWorkloadSeed}))
			if err != nil {
				t.Fatalf("tcp baseline: %v", err)
			}
			want := make([]string, procs)
			for node := range want {
				var own []trace.Event
				for _, e := range rep.Stats.Events() {
					if e.Src == msg.User(node) {
						own = append(own, e)
					}
				}
				want[node] = trace.FingerprintEvents(own)
				if want[node] == "" {
					t.Fatalf("tcp baseline captured no sends from rank %d", node)
				}
			}

			got := make([]string, procs)
			var mu sync.Mutex
			out, err := cluster.Launch(cluster.Spec{
				Procs:   procs,
				Command: []string{testExe(t)},
				ExtraEnv: []string{"ARMCI_PROCNET_TEST_WORKLOAD=workload",
					"ARMCI_PROCNET_TEST_SPEC=" + spec},
				Output:     io.Discard,
				RunTimeout: 2 * time.Minute,
				OnLine: func(node int, line string) {
					fp, ok := parseTagged(line, "WL_FP", "fp")
					if !ok {
						return
					}
					mu.Lock()
					got[node] = fp
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("proc launch: %v (outcome %+v)", err, out)
			}
			mu.Lock()
			defer mu.Unlock()
			for node := range want {
				if got[node] == "" {
					t.Errorf("node %d printed no WL_FP line", node)
					continue
				}
				if got[node] != want[node] {
					t.Errorf("node %d send stream diverged between fabrics:\ntcp  %s\nproc %s",
						node, want[node], got[node])
				}
			}
		})
	}
}

// TestProcnetHierarchicalParityWithTCP is the cross-fabric parity check
// for the topology-aware barrier: the hierarchical put-round workload's
// per-node projection — each node's per-rank send fingerprints — must
// be identical between the in-process TCP fabric and a multi-process
// launch hosting two ranks per worker process. This is the only test
// where the hierarchical barrier's intra-node stage runs between ranks
// of one real OS process while the leader exchange crosses sockets, so
// it pins the leader election and stage ordering to the topology, not
// to any in-process scheduling accident.
func TestProcnetHierarchicalParityWithTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	rep, err := armci.Run(armci.Options{
		Procs:        procHierProcs,
		ProcsPerNode: procHierPPN,
		Fabric:       armci.FabricTCP,
		BarrierAlg:   armci.BarrierHierarchical,
		CaptureTrace: true,
		OpDeadline:   30 * time.Second,
	}, procHierBody)
	if err != nil {
		t.Fatalf("tcp baseline: %v", err)
	}
	numNodes := (procHierProcs + procHierPPN - 1) / procHierPPN
	want := make([]string, numNodes)
	for node := range want {
		want[node] = procHierNodeFingerprint(rep.Stats.Events(), node)
		if strings.Contains(want[node], "r"+strconv.Itoa(node*procHierPPN)+":,") || want[node] == "" {
			t.Fatalf("tcp baseline captured no sends for node %d: %q", node, want[node])
		}
	}

	got := make([]string, numNodes)
	var mu sync.Mutex
	out, err := cluster.Launch(cluster.Spec{
		Procs:        procHierProcs,
		ProcsPerNode: procHierPPN,
		Command:      []string{testExe(t)},
		ExtraEnv:     []string{"ARMCI_PROCNET_TEST_WORKLOAD=hier"},
		Output:       io.Discard,
		RunTimeout:   2 * time.Minute,
		OnLine: func(node int, line string) {
			fp, ok := parseTagged(line, "HIER_FP", "fp")
			if !ok {
				return
			}
			mu.Lock()
			got[node] = fp
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("proc launch: %v (outcome %+v)", err, out)
	}
	mu.Lock()
	defer mu.Unlock()
	for node := range want {
		if got[node] == "" {
			t.Errorf("node %d printed no HIER_FP line", node)
			continue
		}
		if got[node] != want[node] {
			t.Errorf("node %d per-rank send streams diverged between fabrics:\ntcp  %s\nproc %s",
				node, want[node], got[node])
		}
	}
}

// TestProcnetFig7SmallShape launches a smoke-sized Figure 7 point
// across real OS processes and asserts the paper's shape: the combined
// barrier beats the serialized AllFence+MPI_Barrier.
func TestProcnetFig7SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	t.Setenv("ARMCI_PROCNET_TEST_WORKLOAD", "fig7")
	row, err := bench.LaunchFig7Proc(bench.Fig7ProcLaunch{
		Procs:      4,
		Command:    []string{testExe(t)},
		Output:     io.Discard,
		RunTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("fig7 proc launch: %v", err)
	}
	if row.OldUS <= 0 || row.NewUS <= 0 {
		t.Fatalf("non-positive sync times: %+v", row)
	}
	if row.Factor <= 1 {
		t.Errorf("combined barrier did not beat AllFence+MPI_Barrier: old=%.1fus new=%.1fus factor=%.2f",
			row.OldUS, row.NewUS, row.Factor)
	}
}

// TestProcnetWorkerDeathIsAttributed kills one worker mid-run and
// requires (a) prompt termination rather than a hang, (b) the
// coordinator's verdict naming the victim's rank, and (c) every
// survivor observing the same rank-attributed fault.
func TestProcnetWorkerDeathIsAttributed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const procs = 3
	survivors := map[int]int{} // node -> fault rank it reported
	var mu sync.Mutex
	start := time.Now()
	out, err := cluster.Launch(cluster.Spec{
		Procs:      procs,
		Command:    []string{testExe(t)},
		ExtraEnv:   []string{"ARMCI_PROCNET_TEST_WORKLOAD=die"},
		Output:     io.Discard,
		RunTimeout: time.Minute,
		OnLine: func(node int, line string) {
			r, ok := parseTagged(line, "DIE_FAULT", "rank")
			if !ok {
				return
			}
			rank, aerr := strconv.Atoi(r)
			if aerr != nil {
				rank = -1
			}
			mu.Lock()
			survivors[node] = rank
			mu.Unlock()
		},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("launch reported success despite a worker dying mid-run")
	}
	if out.Fault == nil {
		t.Fatalf("no rank-attributed fault in outcome; err=%v", err)
	}
	if out.Fault.Rank != procDieVictim || out.Fault.Kind != pipeline.FaultPeerLost {
		t.Errorf("fault = rank %d kind %q, want rank %d kind %q",
			out.Fault.Rank, out.Fault.Kind, procDieVictim, pipeline.FaultPeerLost)
	}
	// Failure detection must be prompt — connection loss, not a stuck
	// run ended by timeouts.
	if elapsed > 20*time.Second {
		t.Errorf("launch took %v to fail; worker death should surface promptly", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	for node := 0; node < procs; node++ {
		if node == procDieVictim {
			continue
		}
		if rank, ok := survivors[node]; !ok {
			t.Errorf("survivor node %d never reported the fault", node)
		} else if rank != procDieVictim {
			t.Errorf("survivor node %d blamed rank %d, want %d", node, rank, procDieVictim)
		}
	}
}

// TestProcnetElasticKillAndRespawn is the kill-one-worker scenario run
// under elastic recovery: the same abrupt mid-run worker death that
// TestProcnetWorkerDeathIsAttributed turns into a rank-attributed abort
// instead completes the job. The coordinator respawns the victim, the
// newcomer restores its Space from the peer replica, survivors roll
// back to the last committed sync epoch, and every rank — including the
// respawned incarnation — reports the crash-free cluster fingerprint.
func TestProcnetElasticKillAndRespawn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const procs = 4
	run := func(faults string) (fps map[int]string, recovered int, maxInc int) {
		t.Helper()
		fps = map[int]string{}
		var mu sync.Mutex
		out, err := cluster.Launch(cluster.Spec{
			Procs:      procs,
			Command:    []string{testExe(t)},
			ExtraEnv:   []string{"ARMCI_PROCNET_TEST_WORKLOAD=elastic", "ARMCI_PROCNET_TEST_FAULTS=" + faults},
			Output:     io.Discard,
			RunTimeout: time.Minute,
			Elastic:    true,
			OnLine: func(node int, line string) {
				fp, ok := parseTagged(line, "ELASTIC_FP", "fp")
				if !ok {
					return
				}
				rec, _ := parseTagged(line, "ELASTIC_FP", "rec")
				inc, _ := parseTagged(line, "ELASTIC_FP", "inc")
				mu.Lock()
				defer mu.Unlock()
				fps[node] = fp
				if rec == "1" {
					recovered++
				}
				if v, aerr := strconv.Atoi(inc); aerr == nil && v > maxInc {
					maxInc = v
				}
			},
		})
		if err != nil {
			t.Fatalf("elastic launch (faults=%q): %v (outcome %+v)", faults, err, out)
		}
		mu.Lock()
		defer mu.Unlock()
		for node := 0; node < procs; node++ {
			if fps[node] == "" {
				t.Fatalf("faults=%q: node %d printed no ELASTIC_FP line", faults, node)
			}
			if fps[node] != fps[0] {
				t.Fatalf("faults=%q: node %d fingerprint %s diverges from node 0's %s",
					faults, node, fps[node], fps[0])
			}
		}
		return fps, recovered, maxInc
	}

	base, rec, inc := run("")
	if rec != 0 || inc != 0 {
		t.Fatalf("crash-free run claims a recovery (recovered=%d, max incarnation=%d)", rec, inc)
	}
	fps, rec, inc := run("crashrank=1@2")
	if fps[0] != base[0] {
		t.Errorf("post-recovery fingerprint %s != crash-free %s — ops lost or duplicated", fps[0], base[0])
	}
	if rec != procs {
		t.Errorf("%d of %d ranks ran the recovery protocol", rec, procs)
	}
	if inc != 1 {
		t.Errorf("max incarnation %d, want 1 (victim respawned exactly once)", inc)
	}
}

// testExe resolves this test binary for self-exec.
func testExe(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("resolving test binary: %v", err)
	}
	return exe
}

// parseTagged pulls key=value out of a "TAG k1=v1 k2=v2" worker line.
func parseTagged(line, tag, key string) (string, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, tag+" ") {
		return "", false
	}
	for _, f := range strings.Fields(line[len(tag):]) {
		if k, v, ok := strings.Cut(f, "="); ok && k == key {
			return v, true
		}
	}
	return "", false
}
