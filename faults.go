package armci

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseFaults parses a textual fault plan — the grammar of the
// armci-bench -faults flag — into a Faults struct. The plan is a
// comma-separated list of knobs, each given at most once:
//
//	jitter=<dur>         uniform extra delay in [0, dur) per message
//	spike=<dur>@<prob>   latency spike of dur with probability prob
//	dup=<prob>[@<dur>]   duplicate delivery with probability prob,
//	                     the copy trailing by dur (default small)
//	loss=<prob>[@<burst>] drop each transmission with probability prob;
//	                     a loss event extends over burst consecutive
//	                     messages (default 1)
//	rto=<dur>[@<cap>]    initial retransmit timeout, doubling up to cap
//	                     (default 16×rto)
//	retry=<n>            retransmission budget per message, n >= 1
//	crash=<rank>@<sends> fail-stop rank at its sends-th send, sends >= 1
//	crashheld=<rank>@<n> fail-stop rank right after its n-th lock
//	                     acquisition — the rank dies holding the lock,
//	                     n >= 1
//	crashrank=<rank>@<n> kill rank partway through sync epoch n of an
//	                     elastic-replication workload (a real worker
//	                     exit under armci-run -elastic, a cooperative
//	                     emulation on the in-process fabrics), n >= 1
//	seed=<int>           fault pattern seed
//
// The empty string parses to the zero Faults (no faults). Any accepted
// plan round-trips: ParseFaults(FormatFaults(f)) returns f again.
func ParseFaults(s string) (Faults, error) {
	var f Faults
	if s == "" {
		return f, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return f, fmt.Errorf("bad faults entry %q (want key=value)", part)
		}
		if seen[key] {
			return f, fmt.Errorf("duplicate faults knob %q: each knob may be given at most once", key)
		}
		seen[key] = true
		switch key {
		case "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return f, fmt.Errorf("bad faults jitter %q: %v", val, err)
			}
			f.Jitter = d
		case "spike":
			dv, pv, ok := strings.Cut(val, "@")
			if !ok {
				return f, fmt.Errorf("bad faults spike %q (want <dur>@<prob>)", val)
			}
			d, err := time.ParseDuration(dv)
			if err != nil {
				return f, fmt.Errorf("bad faults spike delay %q: %v", dv, err)
			}
			p, err := strconv.ParseFloat(pv, 64)
			if err != nil {
				return f, fmt.Errorf("bad faults spike probability %q: %v", pv, err)
			}
			f.SpikeDelay, f.SpikeProb = d, p
		case "dup":
			pv, dv, hasDelay := strings.Cut(val, "@")
			p, err := strconv.ParseFloat(pv, 64)
			if err != nil {
				return f, fmt.Errorf("bad faults dup probability %q: %v", pv, err)
			}
			f.DupProb = p
			if hasDelay {
				d, err := time.ParseDuration(dv)
				if err != nil {
					return f, fmt.Errorf("bad faults dup delay %q: %v", dv, err)
				}
				f.DupDelay = d
			}
		case "loss":
			pv, bv, hasBurst := strings.Cut(val, "@")
			p, err := strconv.ParseFloat(pv, 64)
			if err != nil {
				return f, fmt.Errorf("bad faults loss probability %q: %v", pv, err)
			}
			f.LossProb = p
			if hasBurst {
				b, err := strconv.Atoi(bv)
				if err != nil {
					return f, fmt.Errorf("bad faults loss burst %q: %v", bv, err)
				}
				if b < 1 {
					return f, fmt.Errorf("bad faults loss burst %d: must be >= 1", b)
				}
				f.LossBurst = b
			}
		case "rto":
			dv, cv, hasCap := strings.Cut(val, "@")
			d, err := time.ParseDuration(dv)
			if err != nil {
				return f, fmt.Errorf("bad faults rto %q: %v", dv, err)
			}
			f.RTO = d
			if hasCap {
				c, err := time.ParseDuration(cv)
				if err != nil {
					return f, fmt.Errorf("bad faults rto cap %q: %v", cv, err)
				}
				f.RTOCap = c
			}
		case "retry":
			n, err := strconv.Atoi(val)
			if err != nil {
				return f, fmt.Errorf("bad faults retry budget %q: %v", val, err)
			}
			if n < 1 {
				return f, fmt.Errorf("bad faults retry budget %d: must be >= 1", n)
			}
			f.RetryBudget = n
		case "crash":
			rv, sv, ok := strings.Cut(val, "@")
			if !ok {
				return f, fmt.Errorf("bad faults crash %q (want <rank>@<sends>)", val)
			}
			r, err := strconv.Atoi(rv)
			if err != nil {
				return f, fmt.Errorf("bad faults crash rank %q: %v", rv, err)
			}
			if r < 0 {
				return f, fmt.Errorf("bad faults crash rank %d: must be >= 0", r)
			}
			n, err := strconv.Atoi(sv)
			if err != nil {
				return f, fmt.Errorf("bad faults crash send count %q: %v", sv, err)
			}
			if n < 1 {
				return f, fmt.Errorf("bad faults crash send count %d: must be >= 1", n)
			}
			f.CrashRank, f.CrashAfterSends = r, n
		case "crashheld":
			rv, av, ok := strings.Cut(val, "@")
			if !ok {
				return f, fmt.Errorf("bad faults crashheld %q (want <rank>@<nth-acquire>)", val)
			}
			r, err := strconv.Atoi(rv)
			if err != nil {
				return f, fmt.Errorf("bad faults crashheld rank %q: %v", rv, err)
			}
			if r < 0 {
				return f, fmt.Errorf("bad faults crashheld rank %d: must be >= 0", r)
			}
			n, err := strconv.Atoi(av)
			if err != nil {
				return f, fmt.Errorf("bad faults crashheld acquire count %q: %v", av, err)
			}
			if n < 1 {
				return f, fmt.Errorf("bad faults crashheld acquire count %d: must be >= 1", n)
			}
			f.CrashHeldRank, f.CrashHeldAcquire = r, n
		case "crashrank":
			rv, sv, ok := strings.Cut(val, "@")
			if !ok {
				return f, fmt.Errorf("bad faults crashrank %q (want <rank>@<step>)", val)
			}
			r, err := strconv.Atoi(rv)
			if err != nil {
				return f, fmt.Errorf("bad faults crashrank rank %q: %v", rv, err)
			}
			if r < 0 {
				return f, fmt.Errorf("bad faults crashrank rank %d: must be >= 0", r)
			}
			n, err := strconv.Atoi(sv)
			if err != nil {
				return f, fmt.Errorf("bad faults crashrank step %q: %v", sv, err)
			}
			if n < 1 {
				return f, fmt.Errorf("bad faults crashrank step %d: must be >= 1", n)
			}
			f.ElasticCrashRank, f.ElasticCrashStep = r, n
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad faults seed %q: %v", val, err)
			}
			f.Seed = n
		default:
			return f, fmt.Errorf("unknown faults knob %q", key)
		}
	}
	if err := f.Validate(); err != nil {
		return f, err
	}
	return f, nil
}

// FormatFaults renders a fault plan in the canonical form of the
// ParseFaults grammar: knobs in a fixed order (jitter, spike, dup, loss,
// rto, retry, crash, crashheld, crashrank, seed), zero-valued knobs omitted, optional
// sub-values omitted when zero. The output re-parses to the same struct
// for any plan ParseFaults accepts. MaxDupsPerPair has no textual form
// and is not rendered.
func FormatFaults(f Faults) string {
	var parts []string
	if f.Jitter != 0 {
		parts = append(parts, "jitter="+f.Jitter.String())
	}
	if f.SpikeProb != 0 || f.SpikeDelay != 0 {
		parts = append(parts, fmt.Sprintf("spike=%s@%s", f.SpikeDelay, fmtProb(f.SpikeProb)))
	}
	if f.DupProb != 0 || f.DupDelay != 0 {
		s := "dup=" + fmtProb(f.DupProb)
		if f.DupDelay != 0 {
			s += "@" + f.DupDelay.String()
		}
		parts = append(parts, s)
	}
	if f.LossProb != 0 || f.LossBurst != 0 {
		s := "loss=" + fmtProb(f.LossProb)
		if f.LossBurst != 0 {
			s += "@" + strconv.Itoa(f.LossBurst)
		}
		parts = append(parts, s)
	}
	if f.RTO != 0 || f.RTOCap != 0 {
		s := "rto=" + f.RTO.String()
		if f.RTOCap != 0 {
			s += "@" + f.RTOCap.String()
		}
		parts = append(parts, s)
	}
	if f.RetryBudget != 0 {
		parts = append(parts, "retry="+strconv.Itoa(f.RetryBudget))
	}
	if f.CrashAfterSends != 0 {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", f.CrashRank, f.CrashAfterSends))
	}
	if f.CrashHeldAcquire != 0 {
		parts = append(parts, fmt.Sprintf("crashheld=%d@%d", f.CrashHeldRank, f.CrashHeldAcquire))
	}
	if f.ElasticCrashStep != 0 {
		parts = append(parts, fmt.Sprintf("crashrank=%d@%d", f.ElasticCrashRank, f.ElasticCrashStep))
	}
	if f.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(f.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// fmtProb renders a probability with the shortest representation that
// parses back to the identical float64.
func fmtProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}
