module armci

go 1.24
