package armci_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"armci"
	"armci/internal/msg"
	"armci/internal/trace"
)

// TestHierarchicalBarrierFingerprintParity pins the topology-aware
// barriers to the fingerprint stability contract: a put-round workload
// synchronized by the k-nomial or hierarchical combined barrier (the
// latter with and without the NIC-offload fence) must produce
// byte-identical per-source-rank digests across sim schedule-shuffle
// seeds and on the concurrent fabrics. Every exchange stage sends to
// fixed partners in a fixed program order — the leader election is a
// pure function of the topology, never of arrival timing — so any
// divergence means an exchange tree branched on schedule state.
//
// Two ranks per node, so the hierarchical barrier exercises both its
// intra-node gather/release and its inter-node leader exchange.
func TestHierarchicalBarrierFingerprintParity(t *testing.T) {
	const (
		procs  = 6
		ppn    = 2
		rounds = 3
	)
	variants := []struct {
		name string
		alg  armci.BarrierAlg
		nic  bool
	}{
		{"knomial", armci.BarrierKnomial, false},
		{"hierarchical", armci.BarrierHierarchical, false},
		{"hierarchical-nic", armci.BarrierHierarchical, true},
	}
	body := func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		slots := p.MallocWords(n)
		for r := 0; r < rounds; r++ {
			shift := 1 + r%(n-1)
			dst := (me + shift) % n
			p.Store(slots[dst].Add(int64(me)), int64((r+1)*1000+me+1))
			p.Barrier()
			src := ((me-shift)%n + n) % n
			if got := p.Load(slots[me].Add(int64(src))); got != int64((r+1)*1000+src+1) {
				panic(fmt.Sprintf("round %d: rank %d read %d from rank %d (store escaped the fence)",
					r, me, got, src))
			}
			p.Barrier()
		}
	}
	run := func(v struct {
		name string
		alg  armci.BarrierAlg
		nic  bool
	}, fabric armci.FabricKind, seed int64) string {
		t.Helper()
		opts := armci.Options{
			Procs:           procs,
			ProcsPerNode:    ppn,
			Fabric:          fabric,
			Preset:          armci.PresetMyrinet2000,
			ScheduleSeed:    seed,
			BarrierAlg:      v.alg,
			NICFenceOffload: v.nic,
			CaptureTrace:    true,
		}
		if fabric != armci.FabricSim {
			opts.OpDeadline = 30 * time.Second
		}
		rep, err := armci.Run(opts, body)
		if err != nil {
			t.Fatalf("%s on %v seed %d: %v", v.name, fabric, seed, err)
		}
		// Digest each source rank's sends separately: a rank's own stream
		// is program-ordered, but the global interleaving is
		// schedule-dependent and must not enter the digest.
		var parts []string
		for r := 0; r < procs; r++ {
			var own []trace.Event
			for _, e := range rep.Stats.Events() {
				if e.Src == msg.User(r) {
					own = append(own, e)
				}
			}
			if len(own) == 0 {
				t.Fatalf("%s on %v seed %d: rank %d sent nothing", v.name, fabric, seed, r)
			}
			parts = append(parts, fmt.Sprintf("r%d:%s", r, trace.FingerprintEvents(own)))
		}
		return strings.Join(parts, " ")
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			want := run(v, armci.FabricSim, 0) // the FIFO baseline
			for _, seed := range []int64{1, 7} {
				if got := run(v, armci.FabricSim, seed); got != want {
					t.Errorf("sim per-rank fingerprints diverged at schedule seed %d:\nseed0 %s\nseed%d %s",
						seed, want, seed, got)
				}
			}
			for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
				if got := run(v, fabric, 0); got != want {
					t.Errorf("%v per-rank fingerprints diverged from sim baseline:\nsim  %s\n%v %s",
						fabric, want, fabric, got)
				}
			}
		})
	}
}
