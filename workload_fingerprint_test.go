package armci_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"armci"
	"armci/internal/msg"
	"armci/internal/trace"
	"armci/internal/workload"
)

// TestWorkloadFingerprintParity extends the fingerprint stability
// guarantee from hand-written rings to every generated workload kind:
// each rank's outgoing request stream is program-ordered and
// data-dependent — the generator derives the whole program from the
// seed, WaitFlag spins on local memory and sends nothing, and the
// collectives send to fixed partners in a fixed order — so the
// per-source digest of each rank's sends must be identical across sim
// schedule-shuffle seeds and on the concurrent fabrics. A generator
// that accidentally branches on arrival timing (or a fabric that
// reorders one rank's sends) breaks this parity.
//
// One rank per node, so every operation crosses the wire on every
// fabric and the streams under comparison carry the full protocol.
func TestWorkloadFingerprintParity(t *testing.T) {
	const procs = 4
	specs := []string{
		"stencil:rows=6,cols=6",
		"paramserver:updates=3,width=4",
		"prodcons:chunks=3,bytes=64,depth=2",
		"mixed:ops=8,rounds=1",
	}
	run := func(spec string, fabric armci.FabricKind, seed int64) string {
		t.Helper()
		sp, err := workload.Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		opts := armci.Options{
			Procs:        procs,
			ProcsPerNode: 1,
			Fabric:       fabric,
			Preset:       armci.PresetMyrinet2000,
			ScheduleSeed: seed,
			CaptureTrace: true,
		}
		if fabric != armci.FabricSim {
			opts.OpDeadline = 30 * time.Second
		}
		// Report is nil: an oracle failure panics the run, so a diverging
		// fingerprint can never come from a silently corrupt pass. The
		// generator seed is pinned by the spec's knobs and Config.Seed, so
		// every run below executes the identical program.
		rep, err := armci.Run(opts, workload.Build(sp, workload.Config{Seed: 42}))
		if err != nil {
			t.Fatalf("%q on %v seed %d: %v", spec, fabric, seed, err)
		}
		// Digest each source rank's sends separately: a rank's own stream
		// is program-ordered, but the global interleaving of ranks is
		// schedule-dependent and must not enter the digest.
		var parts []string
		for r := 0; r < procs; r++ {
			var own []trace.Event
			for _, e := range rep.Stats.Events() {
				if e.Src == msg.User(r) {
					own = append(own, e)
				}
			}
			if len(own) == 0 {
				t.Fatalf("%q on %v seed %d: rank %d sent nothing", spec, fabric, seed, r)
			}
			parts = append(parts, fmt.Sprintf("r%d:%s", r, trace.FingerprintEvents(own)))
		}
		return strings.Join(parts, " ")
	}
	for _, spec := range specs {
		spec := spec
		t.Run(strings.SplitN(spec, ":", 2)[0], func(t *testing.T) {
			want := run(spec, armci.FabricSim, 0) // the FIFO baseline
			for _, seed := range []int64{1, 7} {
				if got := run(spec, armci.FabricSim, seed); got != want {
					t.Errorf("sim per-rank fingerprints diverged at schedule seed %d:\nseed0 %s\nseed%d %s",
						seed, want, seed, got)
				}
			}
			for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
				if got := run(spec, fabric, 0); got != want {
					t.Errorf("%v per-rank fingerprints diverged from sim baseline:\nsim  %s\n%v %s",
						fabric, want, fabric, got)
				}
			}
		})
	}
}
