package armci_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"armci"
	"armci/internal/trace"
)

// The lease lock's acceptance scenario: rank 1 fail-stops while holding
// the lock (crashheld), and rank 0 — which queued behind it — must
// depose the dead holder via the lease repair protocol and run its
// critical sections to completion. The same plan against the plain
// queuing lock must fail fast with a rank-attributed fault error
// instead of hanging.

// leaseCrashPlan designates rank 1 to die right after its first
// acquisition.
func leaseCrashPlan() armci.Faults {
	return armci.Faults{CrashHeldRank: 1, CrashHeldAcquire: 1, Seed: 3}
}

const leaseCrashSections = 5

// runLeaseCrashWorkload runs the canonical holder-crash workload: rank 1
// takes the lock and dies holding it; rank 0 waits until rank 1 is
// registered (so the crash point is ordered before everything rank 0
// records), then acquires the lock leaseCrashSections times, bumping a
// counter each time. Every post-crash lock event is serialized through
// rank 0, which is what makes the recovery history comparable across
// schedule seeds and fabrics.
func runLeaseCrashWorkload(fabric armci.FabricKind, seed int64, metrics *armci.Metrics) (*armci.Report, error) {
	opts := armci.Options{
		Procs:        2,
		Fabric:       fabric,
		Preset:       armci.PresetMyrinet2000,
		NumMutexes:   1,
		LockHomes:    []int{0},
		LeaseTTL:     5 * time.Millisecond,
		Faults:       leaseCrashPlan(),
		CaptureTrace: true,
		ScheduleSeed: seed,
		Metrics:      metrics,
	}
	if fabric != armci.FabricSim {
		opts.ScheduleSeed = 0
		opts.OpDeadline = 30 * time.Second
	}
	return armci.Run(opts, func(p *armci.Proc) {
		cells := p.MallocWords(1) // counter homed at rank 0
		mu := p.Mutex(0, armci.LockLease)
		if p.Rank() == 1 {
			mu.Lock() // the crashheld plan fail-stops inside
			panic("rank 1 survived its designated crashheld fault")
		}
		// Rank 0: wait until rank 1 is the registered tenant (LeaseState
		// Lo = rank+1 = 2; the state pair is homed here, so this poll is
		// local), then contend.
		eng := p.Engine()
		state := p.Locks().LeaseState[0]
		for eng.LoadPair(state).Lo != 2 {
			p.Env().Clock().Sleep(100 * time.Microsecond)
		}
		for i := 0; i < leaseCrashSections; i++ {
			mu.Lock()
			p.Store(cells[0], p.Load(cells[0])+1)
			mu.Unlock()
		}
		if got := p.Load(cells[0]); got != leaseCrashSections {
			panic(fmt.Sprintf("counter %d after recovery, want %d", got, leaseCrashSections))
		}
	})
}

// lockEvents filters a run's op-event stream down to the lock-protocol
// kinds the lease oracles and determinism checks reason about.
func lockEvents(rep *armci.Report) []trace.OpEvent {
	var out []trace.OpEvent
	for _, e := range rep.Stats.OpEvents() {
		switch e.Kind {
		case trace.OpAcquire, trace.OpRelease, trace.OpRepair, trace.OpStaleRelease, trace.OpCrash:
			out = append(out, e)
		}
	}
	return out
}

// TestLeaseLockPlain: with no faults injected the lease lock is just an
// MCS lock with a registration CAS — the counter invariant must hold on
// every fabric.
func TestLeaseLockPlain(t *testing.T) {
	const procs, iters = 4, 6
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fabric.String(), func(t *testing.T) {
			_, err := armci.Run(armci.Options{
				Procs:      procs,
				Fabric:     fabric,
				Preset:     armci.PresetMyrinet2000,
				NumMutexes: 1,
				LockHomes:  []int{0},
			}, func(p *armci.Proc) {
				cells := p.MallocWords(1)
				mu := p.Mutex(0, armci.LockLease)
				for i := 0; i < iters; i++ {
					mu.Lock()
					p.Store(cells[0], p.Load(cells[0])+1)
					if p.NodeOf(0) != p.MyNode() {
						p.Fence(p.NodeOf(0))
					}
					mu.Unlock()
				}
				p.Barrier()
				if p.Rank() == 0 {
					if got := p.Load(cells[0]); got != procs*iters {
						panic(fmt.Sprintf("counter %d, want %d", got, procs*iters))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLeaseLockSurvivesHolderCrash: the acceptance criterion. Under a
// crashheld plan targeting the holder, the lease-lock workload runs to
// completion on every concurrent-capable fabric, with exactly one crash
// witness, exactly one repair deposing the dead rank, and all surviving
// acquisitions accounted for.
func TestLeaseLockSurvivesHolderCrash(t *testing.T) {
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fabric.String(), func(t *testing.T) {
			metrics := armci.NewMetrics()
			rep, err := runLeaseCrashWorkload(fabric, 0, metrics)
			if err != nil {
				t.Fatalf("lease workload did not survive the holder crash: %v", err)
			}
			if got := metrics.Faults().Crashes; got != 1 {
				t.Fatalf("metrics counted %d crashes, want 1", got)
			}
			var acquires, repairs, crashes, stale int
			for _, e := range lockEvents(rep) {
				switch e.Kind {
				case trace.OpAcquire:
					acquires++
				case trace.OpRepair:
					repairs++
					if e.Prev != 1 {
						t.Fatalf("repair deposed rank %d, want 1", e.Prev)
					}
				case trace.OpCrash:
					crashes++
					if e.Rank != 1 {
						t.Fatalf("crash witness names rank %d, want 1", e.Rank)
					}
				case trace.OpStaleRelease:
					stale++
				}
			}
			if crashes != 1 || repairs != 1 {
				t.Fatalf("crash/repair witnesses = %d/%d, want 1/1", crashes, repairs)
			}
			if want := leaseCrashSections + 1; acquires != want {
				t.Fatalf("recorded %d acquires, want %d (1 doomed + %d surviving)",
					acquires, want, leaseCrashSections)
			}
			if stale != 0 {
				t.Fatalf("recorded %d stale releases, want 0 (the dead holder never releases)", stale)
			}
		})
	}
}

// TestQueueLockCrashHeldFailsFast: the same crashheld plan against the
// plain queuing lock must never hang — the run fails fast with a
// FaultError attributing the crash, on every fabric.
func TestQueueLockCrashHeldFailsFast(t *testing.T) {
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fabric.String(), func(t *testing.T) {
			rep, err := armci.Run(armci.Options{
				Procs:      2,
				Fabric:     fabric,
				NumMutexes: 1,
				LockHomes:  []int{0},
				Faults:     leaseCrashPlan(),
			}, func(p *armci.Proc) {
				p.MallocWords(1)
				mu := p.Mutex(0, armci.LockQueue)
				if p.Rank() == 1 {
					mu.Lock() // dies here
					panic("rank 1 survived its designated crashheld fault")
				}
				// Wait until rank 1 occupies the queue (the MCS tail is
				// homed at rank 0), then block on the dead holder.
				eng := p.Engine()
				tail := p.Locks().MCS[0]
				for eng.LoadPair(tail).UnpackPtr().IsNil() {
					p.Env().Clock().Sleep(100 * time.Microsecond)
				}
				mu.Lock()
				panic("rank 0 acquired a lock whose holder died without releasing")
			})
			if err == nil {
				t.Fatal("queue lock under a holder crash completed; want a fault error")
			}
			var fe *armci.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v (%T) is not a *FaultError", err, err)
			}
			if fe.Kind != armci.FaultCrash {
				t.Fatalf("fault kind %v, want FaultCrash", fe.Kind)
			}
			if fe.Rank != 1 {
				t.Fatalf("fault attributed to rank %d, want the crashed rank 1", fe.Rank)
			}
			if rep == nil {
				t.Fatal("fault abort returned no partial report")
			}
		})
	}
}

// TestWaitFlagProducerCrashFailsFast: a consumer spinning in WaitFlag
// whose producer fail-stopped before the flag store landed must surface
// a rank-attributed FaultError — never spin forever.
func TestWaitFlagProducerCrashFailsFast(t *testing.T) {
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fabric.String(), func(t *testing.T) {
			_, err := armci.Run(armci.Options{
				Procs:      2,
				Fabric:     fabric,
				NumMutexes: 1,
				LockHomes:  []int{0},
				Faults:     leaseCrashPlan(),
			}, func(p *armci.Proc) {
				flags := p.MallocWords(1) // flag cell at rank 0
				if p.Rank() == 1 {
					mu := p.Mutex(0, armci.LockQueue)
					mu.Lock() // dies before the notify below
					p.PutFlag(flags[0], []byte{1}, flags[0], 1)
					return
				}
				p.WaitFlag(flags[0], 1)
				panic("flag observed although its producer crashed before storing it")
			})
			var fe *armci.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v (%T) is not a *FaultError", err, err)
			}
			if fe.Kind != armci.FaultCrash || fe.Rank != 1 {
				t.Fatalf("fault = kind %v rank %d, want FaultCrash from rank 1", fe.Kind, fe.Rank)
			}
		})
	}
}

// TestLeaseRecoveryDeterministic: at a fixed fault seed the recovery
// history — acquires, the crash, the repair, every epoch — is
// byte-identical across repeated runs, across sim schedule seeds, and
// across the sim, chan and tcp fabrics.
func TestLeaseRecoveryDeterministic(t *testing.T) {
	base, err := runLeaseCrashWorkload(armci.FabricSim, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.FingerprintOpEvents(lockEvents(base))
	if want == "" {
		t.Fatal("baseline run recorded no lock events")
	}
	for _, seed := range []int64{0, 1, 7, 23} {
		rep, err := runLeaseCrashWorkload(armci.FabricSim, seed, nil)
		if err != nil {
			t.Fatalf("sim seed %d: %v", seed, err)
		}
		if got := trace.FingerprintOpEvents(lockEvents(rep)); got != want {
			t.Fatalf("sim seed %d recovery history diverged:\ngot  %s\nwant %s", seed, got, want)
		}
	}
	for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		rep, err := runLeaseCrashWorkload(fabric, 0, nil)
		if err != nil {
			t.Fatalf("%v: %v", fabric, err)
		}
		if got := trace.FingerprintOpEvents(lockEvents(rep)); got != want {
			t.Fatalf("%v recovery history diverged from sim:\ngot  %s\nwant %s", fabric, got, want)
		}
	}
}
