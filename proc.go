package armci

import (
	"fmt"
	"time"

	"armci/internal/collective"
	"armci/internal/core"
	"armci/internal/proc"
	"armci/internal/shmem"
	"armci/internal/transport"
)

// Proc is a rank's handle to the cluster: every ARMCI operation is a
// method on it. A Proc is only valid inside the body passed to Run, and
// only on the goroutine (or simulated process) that received it.
type Proc struct {
	eng      *proc.Engine
	comm     *collective.Comm
	sync     *core.Sync
	locks    *proc.LockTable
	leaseTTL time.Duration
}

// Rank returns this process's rank, in [0, Size).
func (p *Proc) Rank() int { return p.eng.Rank() }

// Size returns the number of processes in the cluster.
func (p *Proc) Size() int { return p.eng.Size() }

// NumNodes returns the number of SMP nodes.
func (p *Proc) NumNodes() int { return p.eng.Env().NumNodes() }

// NodeOf returns the node hosting the given rank.
func (p *Proc) NodeOf(rank int) int { return p.eng.Env().Node(rank) }

// MyNode returns the caller's node.
func (p *Proc) MyNode() int { return p.NodeOf(p.Rank()) }

// Now returns the fabric time (virtual on the simulated fabric, wall
// otherwise) — the clock experiments measure with.
func (p *Proc) Now() time.Duration { return p.eng.Env().Clock().Now() }

// Env exposes the underlying execution environment for the library's
// companion packages (ga, mp) and the benchmark harness.
func (p *Proc) Env() transport.Env { return p.eng.Env() }

// Engine exposes the underlying ARMCI engine (companion packages only).
func (p *Proc) Engine() *proc.Engine { return p.eng }

// Comm exposes the rank's collective communicator (companion packages and
// the conformance harness only). Mutated synchronization variants built
// by internal/check must reuse this communicator — not build a second one
// — so collective sequence tags stay globally consistent.
func (p *Proc) Comm() *collective.Comm { return p.comm }

// Locks exposes the cluster lock table, or nil when the run was
// configured with NumMutexes == 0 (conformance harness only).
func (p *Proc) Locks() *proc.LockTable { return p.locks }

// --- memory management ---

// MallocLocal allocates n bytes of remotely accessible memory owned by
// the calling rank. Other ranks may use the returned pointer once they
// learn it (for example from Malloc, which is collective).
func (p *Proc) MallocLocal(n int) Ptr {
	return p.eng.Env().Space().AllocBytes(p.Rank(), n)
}

// MallocWordsLocal allocates n words (int64 cells) owned by the caller.
func (p *Proc) MallocWordsLocal(n int) Ptr {
	return p.eng.Env().Space().AllocWords(p.Rank(), n)
}

// Malloc is the collective allocator (ARMCI_Malloc): every rank calls it
// with the same n; each rank allocates n bytes locally and the call
// returns the pointers of all ranks, indexed by rank. The exchange makes
// the call synchronizing.
func (p *Proc) Malloc(n int) []Ptr {
	return p.exchangePtrs(p.MallocLocal(n))
}

// MallocWords is the collective word allocator: like Malloc, for word
// segments.
func (p *Proc) MallocWords(n int) []Ptr {
	return p.exchangePtrs(p.MallocWordsLocal(n))
}

// exchangePtrs all-gathers one pointer per rank.
func (p *Proc) exchangePtrs(mine Ptr) []Ptr {
	n := p.Size()
	vec := make([]int64, 2*n)
	hi, lo := mine.Pack()
	vec[2*p.Rank()], vec[2*p.Rank()+1] = hi, lo
	p.comm.AllReduceSumInt64(vec)
	out := make([]Ptr, n)
	for r := 0; r < n; r++ {
		out[r] = shmem.Unpack(vec[2*r], vec[2*r+1])
	}
	return out
}

// --- one-sided data operations ---

// Put copies data into the byte memory at dst. Non-blocking: completion
// at the destination is guaranteed only after a fence covering dst's node
// (Fence, AllFence or Barrier).
func (p *Proc) Put(dst Ptr, data []byte) { p.eng.Put(dst, data) }

// PutStrided scatters data into the strided region at dst (ARMCI_PutS).
// Non-blocking like Put.
func (p *Proc) PutStrided(dst Ptr, d Strided, data []byte) { p.eng.PutStrided(dst, d, data) }

// Get copies n bytes from the byte memory at src. Blocking.
func (p *Proc) Get(src Ptr, n int) []byte { return p.eng.Get(src, n) }

// GetStrided gathers the strided region at src (ARMCI_GetS). Blocking.
func (p *Proc) GetStrided(src Ptr, d Strided) []byte { return p.eng.GetStrided(src, d) }

// Handle tracks one in-flight non-blocking operation (armci_hdl_t),
// unified across op kinds: gets carry data, puts and accumulates carry
// completion. Wait is idempotent (repeated calls return the cached
// result); Test/Done poll in-flight progress without blocking.
type Handle = proc.Handle

// NbGet starts a non-blocking get of n bytes at src, letting the caller
// overlap communication with computation before calling Wait.
func (p *Proc) NbGet(src Ptr, n int) *Handle { return p.eng.NbGet(src, n) }

// NbGetStrided starts a non-blocking strided get.
func (p *Proc) NbGetStrided(src Ptr, d Strided) *Handle { return p.eng.NbGetStrided(src, d) }

// NbPut starts a non-blocking contiguous put (ARMCI_NbPut) and returns
// its completion handle. The transfer behaves exactly like Put —
// including coalescing eligibility — with per-operation completion on
// top: Wait fences the destination node, Test polls where the fence
// mode makes completion observable.
func (p *Proc) NbPut(dst Ptr, data []byte) *Handle { return p.eng.NbPut(dst, data) }

// NbPutStrided starts a non-blocking strided put with a handle.
func (p *Proc) NbPutStrided(dst Ptr, d Strided, data []byte) *Handle {
	return p.eng.NbPutStrided(dst, d, data)
}

// NbAcc starts a non-blocking contiguous accumulate (ARMCI_NbAcc) with a
// completion handle.
func (p *Proc) NbAcc(op AccOp, dst Ptr, data []byte, scale float64) *Handle {
	return p.eng.NbAcc(op, dst, data, scale)
}

// WaitAll completes every handle (ARMCI_WaitAll); store-class handles
// against the same node share one fence round trip.
func (p *Proc) WaitAll(hs ...*Handle) { p.eng.WaitAll(hs...) }

// PutFlag copies data into dst and then writes val into the word cell
// flag on the same node (ARMCI_Put_flag): the consumer spins locally on
// the flag (WaitFlag) instead of anyone paying a fence round trip. The
// flag store trails the data on the same FIFO pipe, so a consumer that
// observes the flag is guaranteed to observe the data.
func (p *Proc) PutFlag(dst Ptr, data []byte, flag Ptr, val int64) {
	p.eng.PutFlag(dst, data, flag, val)
}

// WaitFlag spins until the local word cell flag holds val — the consumer
// half of the notify/wait pattern.
func (p *Proc) WaitFlag(flag Ptr, val int64) { p.eng.WaitFlag(flag, val) }

// Flush ships any operations coalescing has buffered for the given node.
// A no-op when coalescing is off; never needed for correctness (every
// fence, barrier and notify flushes implicitly) but available to bound
// latency by hand.
func (p *Proc) Flush(node int) { p.eng.Flush(node) }

// FlushAll ships every buffered coalesced operation.
func (p *Proc) FlushAll() { p.eng.FlushAll() }

// Accumulate atomically adds scale*data into the strided region at dst
// (ARMCI_AccS). Non-blocking and fence-counted like Put.
func (p *Proc) Accumulate(op AccOp, dst Ptr, d Strided, data []byte, scale float64) {
	p.eng.Accumulate(op, dst, d, data, scale)
}

// VecPiece is one segment of a vector put: destination and payload.
type VecPiece = proc.VecPiece

// VecRead is one segment of a vector get: source and length.
type VecRead = proc.VecRead

// PutV writes many disjoint segments of one rank's memory with a single
// message (ARMCI_PutV). Non-blocking and fence-counted.
func (p *Proc) PutV(pieces []VecPiece) { p.eng.PutV(pieces) }

// GetV reads many disjoint segments of one rank's memory with a single
// request/response pair (ARMCI_GetV). Blocking; buffers are returned in
// order.
func (p *Proc) GetV(reads []VecRead) [][]byte { return p.eng.GetV(reads) }

// --- atomic word operations (ARMCI_Rmw and the paper's pair extensions) ---

// FetchAdd atomically adds delta to the word at ptr, returning the prior
// value.
func (p *Proc) FetchAdd(ptr Ptr, delta int64) int64 { return p.eng.FetchAdd(ptr, delta) }

// Swap atomically replaces the word at ptr, returning the prior value.
func (p *Proc) Swap(ptr Ptr, v int64) int64 { return p.eng.Swap(ptr, v) }

// CompareAndSwap stores new at ptr if it holds old, returning the
// observed value.
func (p *Proc) CompareAndSwap(ptr Ptr, old, new int64) int64 {
	return p.eng.CompareAndSwap(ptr, old, new)
}

// SwapPair atomically replaces the pair of words at ptr.
func (p *Proc) SwapPair(ptr Ptr, v Pair) Pair { return p.eng.SwapPair(ptr, v) }

// CompareAndSwapPair stores new at the pair at ptr if it holds old,
// returning the observed pair.
func (p *Proc) CompareAndSwapPair(ptr Ptr, old, new Pair) Pair {
	return p.eng.CompareAndSwapPair(ptr, old, new)
}

// LoadPair atomically reads the pair of words at ptr.
func (p *Proc) LoadPair(ptr Ptr) Pair { return p.eng.LoadPair(ptr) }

// Load atomically reads the word at ptr.
func (p *Proc) Load(ptr Ptr) int64 { return p.eng.Load(ptr) }

// Store writes the word at ptr; fire-and-forget and fence-counted when
// remote.
func (p *Proc) Store(ptr Ptr, v int64) { p.eng.Store(ptr, v) }

// StorePair writes the pair at ptr; fire-and-forget and fence-counted
// when remote.
func (p *Proc) StorePair(ptr Ptr, v Pair) { p.eng.StorePair(ptr, v) }

// --- fences and barriers ---

// Fence blocks until all of the caller's fence-counted operations to the
// given node have completed there (ARMCI_Fence).
func (p *Proc) Fence(node int) { p.eng.Fence(node) }

// AllFence blocks until all of the caller's fence-counted operations have
// completed everywhere (ARMCI_AllFence, the original serialized
// implementation).
func (p *Proc) AllFence() { p.eng.AllFence() }

// MPIBarrier performs a plain barrier synchronization.
func (p *Proc) MPIBarrier() { p.sync.MPIBarrier() }

// AllReduceSumInt64 element-wise sums vec across all ranks (collective;
// every rank must call it with a vector of the same length). On return
// every rank holds the identical summed vector.
func (p *Proc) AllReduceSumInt64(vec []int64) { p.comm.AllReduceSumInt64(vec) }

// AllReduceSumFloat64 element-wise sums a float64 vector across all ranks
// (collective). All ranks return bit-identical results.
func (p *Proc) AllReduceSumFloat64(vec []float64) { p.comm.AllReduceSumFloat64(vec) }

// SyncOld is the original GA_Sync: AllFence followed by MPIBarrier.
func (p *Proc) SyncOld() { p.sync.SyncOld() }

// SyncOldPipelined is SyncOld with the fence round trips overlapped — an
// ablation, not a paper configuration.
func (p *Proc) SyncOldPipelined() { p.sync.SyncOldPipelined() }

// Barrier is the paper's new combined operation ARMCI_Barrier():
// semantically AllFence+MPIBarrier, in 2·log₂(N) message latencies.
func (p *Proc) Barrier() { p.sync.Barrier() }

// --- distributed mutexes ---

// LockAlg selects a mutual-exclusion algorithm.
type LockAlg uint8

const (
	// LockHybrid is the original ARMCI lock: ticket-based locally,
	// server-queued remotely (§3.2.1).
	LockHybrid LockAlg = iota
	// LockQueue is the paper's software queuing (MCS) lock (§3.2.2).
	LockQueue
	// LockQueueNoCAS is the future-work variant releasing with swap
	// instead of compare&swap.
	LockQueueNoCAS
	// LockTicket is the pure ticket lock; callers must be on the lock's
	// home node.
	LockTicket
	// LockLease is the crash-survivable queuing lock: MCS ordering plus
	// an epoch-stamped lease, so waiters repair the lock when its holder
	// fail-stops (see Options.LeaseTTL).
	LockLease
)

func (a LockAlg) String() string {
	switch a {
	case LockHybrid:
		return "hybrid"
	case LockQueue:
		return "queue"
	case LockQueueNoCAS:
		return "queue-nocas"
	case LockTicket:
		return "ticket"
	case LockLease:
		return "lease"
	}
	return fmt.Sprintf("LockAlg(%d)", uint8(a))
}

// Mutex is a distributed lock handle.
type Mutex = core.Mutex

// Mutex returns the caller's handle to cluster lock idx (created via
// Options.NumMutexes) under the chosen algorithm. All processes must use
// the same algorithm for a given lock index.
func (p *Proc) Mutex(idx int, alg LockAlg) Mutex {
	if p.locks == nil {
		panic("armci: run was configured with NumMutexes == 0")
	}
	if idx < 0 || idx >= p.locks.NumLocks() {
		panic(fmt.Sprintf("armci: mutex index %d out of range [0,%d)", idx, p.locks.NumLocks()))
	}
	switch alg {
	case LockHybrid:
		return core.NewHybrid(p.eng, p.locks, idx)
	case LockQueue:
		return core.NewQueueLock(p.eng, p.locks, idx)
	case LockQueueNoCAS:
		return core.NewQueueLockNoCAS(p.eng, p.locks, idx)
	case LockTicket:
		return core.NewTicket(p.eng, p.locks, idx)
	case LockLease:
		return core.NewLeaseLock(p.eng, p.locks, idx, p.leaseTTL)
	}
	panic(fmt.Sprintf("armci: unknown lock algorithm %v", alg))
}

// LockHome returns the home rank of cluster lock idx.
func (p *Proc) LockHome(idx int) int {
	if p.locks == nil {
		panic("armci: run was configured with NumMutexes == 0")
	}
	return p.locks.Home[idx]
}
