package armci_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci"
)

// TestVectorOps exercises PutV/GetV on every fabric: scattered segments
// written with one message, read back with one request.
func TestVectorOps(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs = 3
			_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
				ptrs := p.Malloc(1024)
				me := p.Rank()
				target := (me + 1) % procs

				// Scatter five disjoint tagged segments into the target.
				var pieces []armci.VecPiece
				for s := 0; s < 5; s++ {
					pieces = append(pieces, armci.VecPiece{
						Ptr:  ptrs[target].Add(int64(s * 200)),
						Data: bytes.Repeat([]byte{byte(10*me + s)}, 16),
					})
				}
				p.PutV(pieces)
				p.Barrier()

				// Read back the segments written into MY buffer by rank
				// (me-1), with one vector get against my own memory via a
				// remote rank's view — use the writer's perspective:
				// read the segments we just wrote, remotely.
				var reads []armci.VecRead
				for s := 0; s < 5; s++ {
					reads = append(reads, armci.VecRead{Ptr: ptrs[target].Add(int64(s * 200)), N: 16})
				}
				bufs := p.GetV(reads)
				for s, buf := range bufs {
					want := bytes.Repeat([]byte{byte(10*me + s)}, 16)
					if !bytes.Equal(buf, want) {
						panic(fmt.Sprintf("rank %d segment %d = %v, want %v", me, s, buf[0], want[0]))
					}
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVectorOpsBatchInOneMessage pins the batching property: K scattered
// segments cost one putv message, versus K puts.
func TestVectorOpsBatchInOneMessage(t *testing.T) {
	const segs = 8
	run := func(batched bool) int {
		rep, err := armci.Run(armci.Options{Procs: 2, Fabric: armci.FabricSim}, func(p *armci.Proc) {
			ptrs := p.Malloc(1024)
			if p.Rank() == 0 {
				if batched {
					var pieces []armci.VecPiece
					for s := 0; s < segs; s++ {
						pieces = append(pieces, armci.VecPiece{
							Ptr:  ptrs[1].Add(int64(s * 100)),
							Data: []byte{1, 2, 3, 4},
						})
					}
					p.PutV(pieces)
				} else {
					for s := 0; s < segs; s++ {
						p.Put(ptrs[1].Add(int64(s*100)), []byte{1, 2, 3, 4})
					}
				}
				p.Fence(p.NodeOf(1))
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats.Sends()
	}
	batched, loose := run(true), run(false)
	if loose-batched != segs-1 {
		t.Fatalf("vector batching saved %d messages, want %d (batched %d, loose %d)",
			loose-batched, segs-1, batched, loose)
	}
}

// TestVectorOpsValidation: cross-rank batches and word pointers are
// rejected.
func TestVectorOpsValidation(t *testing.T) {
	_, err := armci.Run(armci.Options{Procs: 2, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		words := p.MallocWords(1)
		for _, fn := range []func(){
			func() {
				p.PutV([]armci.VecPiece{
					{Ptr: ptrs[0], Data: []byte{1}},
					{Ptr: ptrs[1], Data: []byte{2}},
				})
			},
			func() { p.PutV([]armci.VecPiece{{Ptr: words[0], Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}}}) },
			func() {
				p.GetV([]armci.VecRead{
					{Ptr: ptrs[0], N: 1},
					{Ptr: ptrs[1], N: 1},
				})
			},
		} {
			func() {
				defer func() {
					if recover() == nil {
						panic("invalid vector op accepted")
					}
				}()
				fn()
			}()
		}
		// Empty batches are no-ops.
		p.PutV(nil)
		if out := p.GetV(nil); out != nil {
			panic("empty GetV returned data")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
