package armci_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"armci"
)

func TestOptionsValidation(t *testing.T) {
	cases := []armci.Options{
		{Procs: 0},
		{Procs: -3},
		{Procs: 2, Preset: "warp-drive"},
		{Procs: 2, NumMutexes: 2, LockHomes: []int{0}},       // length mismatch
		{Procs: 2, Fabric: armci.FabricKind(99)},             // unknown fabric
		{Procs: 2, NumMutexes: 0, LockHomes: []int{0, 1, 2}}, // homes without mutexes
		{Procs: 2, NumMutexes: 1, LockHomes: []int{5}},       // home out of range
		{Procs: 2, Deadline: -time.Second},
		{Procs: 2, OpDeadline: -time.Millisecond},
	}
	for i, opt := range cases {
		if _, err := armci.Run(opt, func(p *armci.Proc) {}); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
}

// TestOptionsRejectBadFaultPlans: normalize surfaces every invalid
// loss/crash/retry plan as a descriptive error before the fabric runs.
func TestOptionsRejectBadFaultPlans(t *testing.T) {
	cases := []struct {
		name   string
		faults armci.Faults
		want   string // substring of the expected error
	}{
		{"negative loss prob", armci.Faults{LossProb: -0.1}, "LossProb"},
		{"loss prob above 1", armci.Faults{LossProb: 1.5}, "LossProb"},
		{"NaN loss prob", armci.Faults{LossProb: math.NaN()}, "LossProb"},
		{"negative loss burst", armci.Faults{LossBurst: -1}, "LossBurst"},
		{"negative retry budget", armci.Faults{RetryBudget: -2}, "RetryBudget"},
		{"negative rto", armci.Faults{RTO: -time.Millisecond}, "RTO"},
		{"negative rto cap", armci.Faults{RTOCap: -time.Millisecond}, "RTOCap"},
		{"negative crash rank", armci.Faults{CrashRank: -1}, "CrashRank"},
		{"negative crash send count", armci.Faults{CrashAfterSends: -1}, "CrashAfterSends"},
		{"crash rank == procs", armci.Faults{CrashRank: 2, CrashAfterSends: 1}, "out of range"},
		{"crash rank beyond procs", armci.Faults{CrashRank: 7, CrashAfterSends: 3}, "out of range"},
		{"negative spike prob", armci.Faults{SpikeProb: -0.5}, "SpikeProb"},
		{"dup prob above 1", armci.Faults{DupProb: 2}, "DupProb"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := armci.Run(armci.Options{Procs: 2, Faults: tc.faults}, func(p *armci.Proc) {
				t.Error("body ran despite invalid fault plan")
			})
			if err == nil {
				t.Fatalf("invalid plan %+v accepted", tc.faults)
			}
			if !contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestReportContents(t *testing.T) {
	rep, err := armci.Run(armci.Options{
		Procs:  2,
		Fabric: armci.FabricSim,
		Preset: armci.PresetMyrinet2000,
	}, func(p *armci.Proc) {
		ptrs := p.MallocWords(1)
		if p.Rank() == 0 {
			p.Store(ptrs[1], 1)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("virtual elapsed time not reported")
	}
	if rep.Stats.Sends() == 0 {
		t.Fatal("trace empty")
	}
}

// TestSimRunsAreDeterministic: two identical simulated runs produce the
// identical captured message stream and elapsed time — the property that
// makes the benchmark figures reproducible.
func TestSimRunsAreDeterministic(t *testing.T) {
	run := func() (string, time.Duration) {
		rep, err := armci.Run(armci.Options{
			Procs:        6,
			Fabric:       armci.FabricSim,
			Preset:       armci.PresetMyrinet2000,
			CaptureTrace: true,
			NumMutexes:   1,
		}, func(p *armci.Proc) {
			ptrs := p.Malloc(64)
			payload := bytes.Repeat([]byte{byte(p.Rank())}, 32)
			mu := p.Mutex(0, armci.LockQueue)
			for round := 0; round < 3; round++ {
				for q := 0; q < p.Size(); q++ {
					if q != p.Rank() {
						p.Put(ptrs[q], payload)
					}
				}
				p.Barrier()
				mu.Lock()
				mu.Unlock()
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats.Fingerprint(), rep.Elapsed
	}
	fp1, t1 := run()
	fp2, t2 := run()
	if fp1 != fp2 {
		t.Fatal("identical runs produced different message streams")
	}
	if t1 != t2 {
		t.Fatalf("identical runs took %v and %v", t1, t2)
	}
}

// TestSMPNodes: with several ranks per node, co-located traffic bypasses
// the network entirely and locks exploit the local fast path.
func TestSMPNodes(t *testing.T) {
	rep, err := armci.Run(armci.Options{
		Procs:        4,
		ProcsPerNode: 4, // one SMP node: everything is local
		Fabric:       armci.FabricSim,
		NumMutexes:   1,
	}, func(p *armci.Proc) {
		if p.NumNodes() != 1 || p.MyNode() != 0 {
			panic("topology wrong")
		}
		ptrs := p.MallocWords(4)
		mu := p.Mutex(0, armci.LockQueue)
		for i := 0; i < 10; i++ {
			mu.Lock()
			v := p.Load(ptrs[0])
			p.Store(ptrs[0], v+1)
			mu.Unlock()
		}
		p.Barrier()
		if p.Rank() == 0 && p.Load(ptrs[0]) != 40 {
			panic(fmt.Sprintf("counter = %d", p.Load(ptrs[0])))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only collective messages (Malloc exchange + barriers) may cross
	// the fabric; no puts, gets, RMWs or lock messages.
	sum := rep.Stats.Summary()
	for _, forbidden := range []string{"put=", "rmw=", "lock-req=", "unlock="} {
		if contains(sum, forbidden) {
			t.Fatalf("single-node run sent remote traffic: %s", sum)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestFenceAckModePublic: the LAPI/VIA-like mode works through the public
// API on every fabric.
func TestFenceAckModePublic(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs = 4
			_, err := armci.Run(armci.Options{
				Procs:     procs,
				Fabric:    fk,
				FenceMode: armci.FenceAck,
			}, func(p *armci.Proc) {
				ptrs := p.MallocWords(procs)
				me := p.Rank()
				for q := 0; q < procs; q++ {
					if q != me {
						p.Store(ptrs[q].Add(int64(me)), int64(me+1))
					}
				}
				p.Barrier()
				for q := 0; q < procs; q++ {
					if q != me {
						if got := p.Load(ptrs[me].Add(int64(q))); got != int64(q+1) {
							panic(fmt.Sprintf("rank %d missing write from %d", me, q))
						}
					}
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNbGetOverlap: non-blocking gets return correct data after
// intervening operations, locally and remotely.
func TestNbGetOverlap(t *testing.T) {
	_, err := armci.Run(armci.Options{Procs: 2, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		me := p.Rank()
		fill := bytes.Repeat([]byte{byte(me + 1)}, 64)
		p.Put(ptrs[me], fill) // local
		p.Barrier()

		// Issue both remote and local gets, interleave other work, then
		// collect in reverse order.
		words := p.MallocWords(1)
		hRemote := p.NbGet(ptrs[1-me], 64)
		hLocal := p.NbGet(ptrs[me], 64)
		p.FetchAdd(words[1-me], 1) // unrelated remote traffic in between
		local := hLocal.Wait()
		remote := hRemote.Wait()
		if !bytes.Equal(local, fill) {
			panic("local nbget wrong")
		}
		if !bytes.Equal(remote, bytes.Repeat([]byte{byte(2 - me)}, 64)) {
			panic("remote nbget wrong")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNbGetWaitIdempotent documents the idempotent contract: repeated
// Wait calls return the same cached data, and Done reports completion
// after the first Wait.
func TestNbGetWaitIdempotent(t *testing.T) {
	_, err := armci.Run(armci.Options{Procs: 2, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		ptrs := p.Malloc(8)
		me := p.Rank()
		fill := bytes.Repeat([]byte{byte(me + 1)}, 8)
		p.Put(ptrs[me], fill)
		p.Barrier()

		h := p.NbGet(ptrs[1-me], 8)
		first := h.Wait()
		if !h.Done() {
			panic("Done false after Wait")
		}
		second := h.Wait()
		want := bytes.Repeat([]byte{byte(2 - me)}, 8)
		if !bytes.Equal(first, want) || !bytes.Equal(second, want) {
			panic("repeated Wait returned different data")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestJitterStress: with random extra delays on every message, the sync
// and lock protocols stay correct on the concurrent fabric.
func TestJitterStress(t *testing.T) {
	const procs, iters = 4, 10
	_, err := armci.Run(armci.Options{
		Procs:      procs,
		Fabric:     armci.FabricChan,
		NumMutexes: 1,
		Jitter:     300 * time.Microsecond,
		JitterSeed: 7,
	}, func(p *armci.Proc) {
		ptrs := p.MallocWords(procs)
		mu := p.Mutex(0, armci.LockQueue)
		me := p.Rank()
		for i := 0; i < iters; i++ {
			for q := 0; q < procs; q++ {
				if q != me {
					p.Store(ptrs[q].Add(int64(me)), int64(i+1))
				}
			}
			p.Barrier()
			for q := 0; q < procs; q++ {
				if q != me {
					if got := p.Load(ptrs[me].Add(int64(q))); got != int64(i+1) {
						panic(fmt.Sprintf("iter %d: stale value %d from %d", i, got, q))
					}
				}
			}
			mu.Lock()
			v := p.Load(ptrs[0].Add(int64(procs - 1)))
			p.Store(ptrs[0].Add(int64(procs-1)), v)
			mu.Unlock()
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFetchAddOnBytePtrPanics: word operations demand word pointers.
func TestFetchAddOnBytePtrPanics(t *testing.T) {
	_, err := armci.Run(armci.Options{Procs: 1, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		b := p.MallocLocal(8)
		defer func() {
			if recover() == nil {
				panic("byte-pointer FetchAdd did not panic")
			}
		}()
		p.FetchAdd(b, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMutexMisuse: index errors and missing configuration panic loudly.
func TestMutexMisuse(t *testing.T) {
	_, err := armci.Run(armci.Options{Procs: 1, Fabric: armci.FabricSim, NumMutexes: 1}, func(p *armci.Proc) {
		for _, fn := range []func(){
			func() { p.Mutex(1, armci.LockQueue) },  // out of range
			func() { p.Mutex(-1, armci.LockQueue) }, // negative
			func() { p.Mutex(0, armci.LockAlg(9)) }, // unknown algorithm
		} {
			func() {
				defer func() {
					if recover() == nil {
						panic("expected a panic")
					}
				}()
				fn()
			}()
		}
		if p.LockHome(0) != 0 {
			panic("lock home wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = armci.Run(armci.Options{Procs: 1, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		defer func() {
			if recover() == nil {
				panic("Mutex without NumMutexes did not panic")
			}
		}()
		p.Mutex(0, armci.LockQueue)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceFloatPublic: the float all-reduce is exact on integers and
// identical across ranks.
func TestAllReduceFloatPublic(t *testing.T) {
	const procs = 6
	results := make([]float64, procs)
	_, err := armci.Run(armci.Options{Procs: procs, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		vec := []float64{float64(p.Rank() + 1), 0.5}
		p.AllReduceSumFloat64(vec)
		results[p.Rank()] = vec[0]
		if vec[1] != 3.0 {
			panic(fmt.Sprintf("fraction sum %v", vec[1]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != 21 {
			t.Fatalf("rank %d sum %v, want 21", r, v)
		}
	}
}
