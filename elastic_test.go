package armci_test

import (
	"testing"

	"armci"
	"armci/internal/elastic"
)

// runElasticWorkload executes the elastic-replication workload on one
// fabric and returns every rank's result. On the in-process fabrics the
// crash (when armed) is the cooperative emulation: the victim's memory
// is wiped and rebuilt from the peer replica through real remote gets.
func runElasticWorkload(fabric armci.FabricKind, schedSeed int64, cfg elastic.Config) ([]elastic.Result, error) {
	const procs = 4
	results := make([]elastic.Result, procs)
	_, err := armci.Run(armci.Options{
		Procs:        procs,
		Fabric:       fabric,
		ScheduleSeed: schedSeed,
	}, func(p *armci.Proc) {
		results[p.Rank()] = elastic.Run(p, cfg)
	})
	return results, err
}

func elasticCrashCfg() elastic.Config {
	return elastic.Config{Steps: 5, Seed: 42, CrashRank: 1, CrashStep: 3}
}

// TestElasticRecoveryDeterministic: the post-recovery cluster
// fingerprint is byte-identical to the crash-free run's, on every
// simulator schedule seed and on the concurrent fabrics. The workload
// is commutative by construction, so rollback plus re-execution must
// reconverge on exactly the crash-free state.
func TestElasticRecoveryDeterministic(t *testing.T) {
	oracle, err := runElasticWorkload(armci.FabricSim, 0, elastic.Config{Steps: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle[0].Fingerprint
	if want == 0 {
		t.Fatal("crash-free run produced a zero fingerprint")
	}
	if o := elastic.Oracle(elastic.Config{Steps: 5, Seed: 42}, 4); o != want {
		t.Fatalf("pure-replay oracle %#x != crash-free run %#x", o, want)
	}
	for r, res := range oracle {
		if res.Fingerprint != want {
			t.Fatalf("crash-free run: rank %d fingerprint %#x != rank 0's %#x", r, res.Fingerprint, want)
		}
		if res.Recovered {
			t.Fatalf("crash-free run: rank %d claims a recovery", r)
		}
	}
	for _, seed := range []int64{0, 1, 7, 23} {
		results, err := runElasticWorkload(armci.FabricSim, seed, elasticCrashCfg())
		if err != nil {
			t.Fatalf("sim seed %d: %v", seed, err)
		}
		for r, res := range results {
			if res.Fingerprint != want {
				t.Fatalf("sim seed %d: rank %d post-recovery fingerprint %#x, want crash-free %#x",
					seed, r, res.Fingerprint, want)
			}
			if !res.Recovered {
				t.Fatalf("sim seed %d: rank %d did not run the recovery protocol", seed, r)
			}
		}
	}
	for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		results, err := runElasticWorkload(fabric, 0, elasticCrashCfg())
		if err != nil {
			t.Fatalf("%v: %v", fabric, err)
		}
		for r, res := range results {
			if res.Fingerprint != want {
				t.Fatalf("%v: rank %d post-recovery fingerprint %#x, want crash-free %#x",
					fabric, r, res.Fingerprint, want)
			}
		}
	}
}

// TestElasticStaleEpochMutationDiverges: with the repl-stale-epoch
// mutation armed (survivors skip the rollback, keeping the aborted
// epoch's writes), re-execution double-applies the fetch-adds and the
// fingerprint must diverge from the crash-free oracle — the signal the
// conformance harness's state oracle keys on.
func TestElasticStaleEpochMutationDiverges(t *testing.T) {
	oracle, err := runElasticWorkload(armci.FabricSim, 0, elastic.Config{Steps: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := elasticCrashCfg()
	cfg.SkipRollback = true
	mutated, err := runElasticWorkload(armci.FabricSim, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mutated[0].Fingerprint == oracle[0].Fingerprint {
		t.Fatalf("repl-stale-epoch mutation went undetected: fingerprint %#x matches the crash-free run",
			mutated[0].Fingerprint)
	}
}

// TestElasticCrashFreeMatchesAcrossFabrics: without any crash, every
// fabric converges on the same deterministic fingerprint — the oracle
// the recovery runs are held to is fabric-independent.
func TestElasticCrashFreeMatchesAcrossFabrics(t *testing.T) {
	oracle, err := runElasticWorkload(armci.FabricSim, 0, elastic.Config{Steps: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		results, err := runElasticWorkload(fabric, 0, elastic.Config{Steps: 3, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", fabric, err)
		}
		if results[0].Fingerprint != oracle[0].Fingerprint {
			t.Fatalf("%v fingerprint %#x != sim %#x", fabric, results[0].Fingerprint, oracle[0].Fingerprint)
		}
	}
}
