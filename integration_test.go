package armci_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"armci"
	"armci/ga"
	"armci/mp"
)

// Integration tests: the example applications' workloads, shrunk and
// asserted, on every fabric — so the full stack (GA patches, strided
// transfers, accumulate, counters, collectives, locks, syncs) is
// exercised end to end by `go test` alone.

// TestIntegrationStencil runs a small Jacobi heat iteration and checks
// that heat diffuses and energy stays plausible on every fabric and both
// GA_Sync implementations.
func TestIntegrationStencil(t *testing.T) {
	for _, fk := range fabrics {
		for _, mode := range []ga.SyncMode{ga.SyncNew, ga.SyncOld} {
			t.Run(fmt.Sprintf("%v/%v", fk, mode), func(t *testing.T) {
				const procs, n, iters = 4, 16, 8
				var center, corner float64
				_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
					grids := [2]*ga.Array{}
					for i := range grids {
						a, err := ga.Create(p, fmt.Sprintf("g%d", i), n, n)
						if err != nil {
							panic(err)
						}
						a.SetSyncMode(mode)
						grids[i] = a
						a.Fill(0)
					}
					if p.Rank() == 0 {
						hot := []float64{100, 100, 100, 100}
						for i := range grids {
							grids[i].Put(n/2-1, n/2+1, n/2-1, n/2+1, hot)
						}
					}
					grids[0].Sync()
					grids[1].Sync()
					rlo, rhi, clo, chi := grids[0].Distribution(p.Rank())
					for it := 0; it < iters; it++ {
						src, dst := grids[it%2], grids[(it+1)%2]
						hrlo, hrhi := maxI(rlo-1, 0), minI(rhi+1, n)
						hclo, hchi := maxI(clo-1, 0), minI(chi+1, n)
						w := hchi - hclo
						halo := src.Get(hrlo, hrhi, hclo, hchi)
						at := func(r, c int) float64 {
							if r < 0 || r >= n || c < 0 || c >= n {
								return 0
							}
							return halo[(r-hrlo)*w+(c-hclo)]
						}
						out := make([]float64, (rhi-rlo)*(chi-clo))
						for r := rlo; r < rhi; r++ {
							for c := clo; c < chi; c++ {
								out[(r-rlo)*(chi-clo)+(c-clo)] =
									0.25 * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1))
							}
						}
						dst.Put(rlo, rhi, clo, chi, out)
						dst.Sync()
					}
					if p.Rank() == 0 {
						center = grids[iters%2].Get(n/2, n/2+1, n/2, n/2+1)[0]
						corner = grids[iters%2].Get(0, 1, 0, 1)[0]
					}
					p.Barrier()
				})
				if err != nil {
					t.Fatal(err)
				}
				if center <= 0 || center >= 100 {
					t.Fatalf("center temperature %v not diffusing plausibly", center)
				}
				if corner >= center {
					t.Fatalf("corner (%v) hotter than center (%v)", corner, center)
				}
			})
		}
	}
}

// TestIntegrationHistogram cross-checks the accumulate-based and
// lock-striped histograms on every fabric.
func TestIntegrationHistogram(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs, samples, bins = 3, 300, 8
			var accHist, lockHist []float64
			_, err := armci.Run(armci.Options{
				Procs: procs, Fabric: fk, NumMutexes: 2,
			}, func(p *armci.Proc) {
				me := p.Rank()
				hist, err := ga.Create(p, "h", 1, bins)
				if err != nil {
					panic(err)
				}
				hist.Fill(0)
				contrib := make([]float64, bins)
				x := uint64(me + 1)
				for i := 0; i < samples; i++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					contrib[x%bins]++
				}
				hist.Acc(0, 1, 0, bins, contrib, 1.0)
				hist.Sync()
				counters := p.MallocWords(bins)
				for s := 0; s < 2; s++ {
					mu := p.Mutex(s, armci.LockQueue)
					mu.Lock()
					for b := s; b < bins; b += 2 {
						cell := counters[0].Add(int64(b))
						p.Store(cell, p.Load(cell)+int64(contrib[b]))
					}
					if p.NodeOf(0) != p.MyNode() {
						p.Fence(p.NodeOf(0))
					}
					mu.Unlock()
				}
				p.Barrier()
				if me == 0 {
					accHist = hist.Get(0, 1, 0, bins)
					lockHist = make([]float64, bins)
					for b := 0; b < bins; b++ {
						lockHist[b] = float64(p.Load(counters[0].Add(int64(b))))
					}
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			var total float64
			for b := range accHist {
				if accHist[b] != lockHist[b] {
					t.Fatalf("bin %d: acc %v vs lock %v", b, accHist[b], lockHist[b])
				}
				total += accHist[b]
			}
			if total != procs*samples {
				t.Fatalf("total %v, want %d", total, procs*samples)
			}
		})
	}
}

// TestIntegrationTaskfarm checks exactly-once task claiming on every
// fabric.
func TestIntegrationTaskfarm(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs, tasks = 4, 30
			claimed := make([][]int64, procs)
			_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
				ctr := ga.NewCounter(p, 0)
				for p.Rank() != 0 {
					idx := ctr.ReadInc(1)
					if idx >= tasks {
						break
					}
					claimed[p.Rank()] = append(claimed[p.Rank()], idx)
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, tasks)
			count := 0
			for _, rows := range claimed {
				for _, idx := range rows {
					if seen[idx] {
						t.Fatalf("task %d claimed twice", idx)
					}
					seen[idx] = true
					count++
				}
			}
			if count != tasks {
				t.Fatalf("claimed %d tasks, want %d", count, tasks)
			}
		})
	}
}

// TestIntegrationSampleSort runs the distributed sample sort on every
// fabric and verifies global order and conservation.
func TestIntegrationSampleSort(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs, keys = 4, 200
			violations := 0
			_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
				c := mp.Attach(p)
				me, n := c.Rank(), c.Size()
				rng := rand.New(rand.NewSource(int64(me) + 42))
				local := make([]int64, keys)
				for i := range local {
					local[i] = rng.Int63n(1 << 30)
				}
				sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
				samples := make([]int64, n)
				for i := 0; i < n; i++ {
					samples[i] = local[(i*len(local))/n]
				}
				gathered := c.Gather(0, i64b(samples))
				var splitters []int64
				if me == 0 {
					var pool []int64
					for _, b := range gathered {
						pool = append(pool, b2i64(b)...)
					}
					sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
					for i := 1; i < n; i++ {
						splitters = append(splitters, pool[(i*len(pool))/n])
					}
				}
				splitters = b2i64(c.Bcast(0, i64b(splitters)))
				buckets := make([][]int64, n)
				b := 0
				for _, k := range local {
					for b < n-1 && k >= splitters[b] {
						b++
					}
					buckets[b] = append(buckets[b], k)
				}
				for q := 0; q < n; q++ {
					if q != me {
						c.Send(q, 1, i64b(buckets[q]))
					}
				}
				merged := append([]int64(nil), buckets[me]...)
				for q := 0; q < n; q++ {
					if q != me {
						merged = append(merged, b2i64(c.Recv(q, 1))...)
					}
				}
				sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
				myMin := int64(math.MaxInt64)
				if len(merged) > 0 {
					myMin = merged[0]
				}
				if me > 0 {
					c.SendInt64s(me-1, 2, []int64{myMin})
				}
				if me < n-1 {
					rightMin := c.RecvInt64s(me+1, 2)[0]
					if len(merged) > 0 && merged[len(merged)-1] > rightMin {
						violations++
					}
				}
				total := []int64{int64(len(merged))}
				c.AllReduceSumInt64(total)
				if total[0] != int64(n*keys) {
					panic(fmt.Sprintf("total %d keys", total[0]))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if violations != 0 {
				t.Fatalf("%d global-order violations", violations)
			}
		})
	}
}

func i64b(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		for k := 0; k < 8; k++ {
			out[8*i+k] = byte(x >> (8 * k))
		}
	}
	return out
}

func b2i64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		var x uint64
		for k := 0; k < 8; k++ {
			x |= uint64(b[8*i+k]) << (8 * k)
		}
		out[i] = int64(x)
	}
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
